/**
 * @file
 * Discrete-event model implementation.
 */

#include "event_sim.hh"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "base/logging.hh"
#include "base/random.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "gpu/cache_model.hh"
#include "gpu/dispatch.hh"
#include "gpu/gpu_config.hh"
#include "gpu/interconnect.hh"
#include "gpu/kernel_desc.hh"
#include "gpu/memory_system.hh"
#include "gpu/occupancy.hh"
#include "resource.hh"

namespace gpuscale {
namespace gpu {
namespace timing {

namespace {

/** FNV-1a hash used to derive per-kernel RNG streams. */
uint64_t
hashName(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Per-wavefront execution state. */
struct WaveState {
    int cu = 0;
    int64_t wg = 0;
    /** Phases remaining: a wave runs segments+chains phases. */
    int phase = 0;
    int total_phases = 0;
    Rng rng{0};
};

/** Heap event: advance one wave at a time. */
struct Event {
    double time = 0.0;
    uint64_t seq = 0; ///< tie-breaker for determinism
    size_t wave = 0;

    bool operator>(const Event &other) const
    {
        if (time != other.time)
            return time > other.time;
        return seq > other.seq;
    }
};

} // namespace

EventModel::EventModel(EventSimParams params)
    : params_(params)
{
}

KernelPerf
EventModel::simulateParallelPhase(const KernelDesc &kernel,
                                  const GpuConfig &cfg,
                                  stats::StatGroup *stats) const
{
    KernelPerf perf;
    perf.occupancy = computeOccupancy(kernel, cfg);
    perf.cache = computeCacheBehavior(kernel, cfg, perf.occupancy);

    const double clk = cfg.coreClkHz();
    const int waves_per_wg = kernel.wavesPerWg(cfg);

    //
    // Optionally shrink the launch to the simulation budget and
    // extrapolate.  We keep at least several full residency batches so
    // steady-state contention is preserved.
    //
    int64_t sim_wgs = kernel.num_workgroups;
    const int64_t total_waves = kernel.totalWaves(cfg);
    double scale = 1.0;
    if (total_waves > params_.max_simulated_waves) {
        sim_wgs = std::max<int64_t>(
            params_.max_simulated_waves / waves_per_wg, 1);
        scale = static_cast<double>(kernel.num_workgroups) /
                static_cast<double>(sim_wgs);
    }

    //
    // Resources.
    //
    const XbarState xbar = computeXbar(cfg);
    const MemorySystem mem(cfg);

    std::vector<PipeResource> compute_pipes;
    std::vector<PipeResource> l1_pipes;
    compute_pipes.reserve(cfg.num_cus);
    l1_pipes.reserve(cfg.num_cus);
    for (int cu = 0; cu < cfg.num_cus; ++cu) {
        compute_pipes.emplace_back(strprintf("cu%d.simd", cu),
                                   cfg.simds_per_cu * clk);
        l1_pipes.emplace_back(strprintf("cu%d.l1", cu),
                              cfg.l1_bytes_per_cycle * clk);
    }
    PipeResource l2_pipe("l2", xbar.effective_bw);
    PipeResource dram_pipe("dram", mem.peakBandwidth());
    PipeResource atomic_pipe("atomic", cfg.atomic_ops_per_cycle * clk);

    //
    // Per-wave workload shape.
    //
    const double div_mult = 1.0 / (1.0 - kernel.branch_divergence);
    const int issue_cycles =
        cfg.wavefront_size / cfg.lanes_per_simd;
    const double lds_cycles_per_wave =
        kernel.lds_ops * cfg.wavefront_size / cfg.lds_lanes_per_cycle;
    const double barrier_cycles =
        kernel.barriers * (20.0 + 4.0 * waves_per_wg);
    const double compute_cycles_per_wave =
        (kernel.valu_ops + 4.0 * kernel.sfu_ops) * issue_cycles *
            div_mult +
        lds_cycles_per_wave + barrier_cycles;

    const double mem_insts_per_wave =
        kernel.mem_loads + kernel.mem_stores;
    const int chains = mem_insts_per_wave > 0
                           ? static_cast<int>(std::ceil(
                                 mem_insts_per_wave / kernel.mlp))
                           : 0;
    const double insts_per_chain =
        chains > 0 ? mem_insts_per_wave / chains : 0.0;
    const double bytes_per_inst =
        cfg.wavefront_size * kernel.bytes_per_access / kernel.coalescing;
    const double compute_segment_cycles =
        compute_cycles_per_wave / (chains + 1);

    const double atomics_per_wave =
        kernel.atomic_ops * cfg.wavefront_size;
    // Matches AnalyticParams' default retry model.
    const double retry_mult =
        1.0 + kernel.atomic_contention * 2.5 *
                  static_cast<double>(perf.occupancy.active_waves) /
                  1760.0;

    const double l1_lat = cfg.l1_latency_cycles / clk;
    const double l2_lat = cfg.l2_latency_cycles / clk + xbar.latency_s;
    // The event model uses the unloaded DRAM latency; queueing emerges
    // from the DRAM pipe itself.
    const double dram_lat = l2_lat + mem.unloadedLatency();

    //
    // Dispatcher state: per-CU workgroup slots.
    //
    const int slots_per_cu = perf.occupancy.wgs_per_cu;
    std::vector<WaveState> waves;
    waves.reserve(static_cast<size_t>(
        std::min<int64_t>(sim_wgs, 4 * cfg.num_cus * slots_per_cu) *
        waves_per_wg));

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        heap;
    uint64_t seq = 0;

    std::vector<int> wg_waves_left;
    int64_t next_wg = 0;
    double makespan = 0.0;

    Rng kernel_rng(hashName(kernel.name) ^ params_.seed);

    auto dispatch_wg = [&](int cu, double now) {
        ++next_wg;
        wg_waves_left.push_back(waves_per_wg);
        const size_t wg_slot = wg_waves_left.size() - 1;
        for (int w = 0; w < waves_per_wg; ++w) {
            WaveState ws;
            ws.cu = cu;
            ws.wg = static_cast<int64_t>(wg_slot);
            ws.phase = 0;
            ws.total_phases = 2 * chains + 1;
            ws.rng = Rng(kernel_rng.next());
            waves.push_back(ws);
            heap.push({now, seq++, waves.size() - 1});
        }
    };

    // Initial fill: round-robin workgroups across CU slots.
    for (int s = 0; s < slots_per_cu && next_wg < sim_wgs; ++s) {
        for (int cu = 0; cu < cfg.num_cus && next_wg < sim_wgs; ++cu)
            dispatch_wg(cu, 0.0);
    }

    //
    // Main event loop.
    //
    uint64_t events_processed = 0;
    while (!heap.empty()) {
        const Event ev = heap.top();
        heap.pop();
        ++events_processed;
        WaveState &ws = waves[ev.wave];
        const double now = ev.time;

        if (ws.phase == ws.total_phases) {
            // Wave retired; account the workgroup.
            double done_time = now;
            if (atomics_per_wave > 0) {
                done_time = atomic_pipe.serve(
                    now, atomics_per_wave * retry_mult);
            }
            makespan = std::max(makespan, done_time);
            if (--wg_waves_left[static_cast<size_t>(ws.wg)] == 0 &&
                next_wg < sim_wgs) {
                dispatch_wg(ws.cu, done_time);
            }
            continue;
        }

        double next_time;
        if (ws.phase % 2 == 0) {
            // Compute segment on this CU's SIMD pipe.
            next_time = compute_pipes[static_cast<size_t>(ws.cu)].serve(
                now, compute_segment_cycles);
        } else {
            // Memory-dependency chain: insts_per_chain independent
            // requests; the chain completes when the slowest returns.
            next_time = now;
            const int whole_insts =
                static_cast<int>(std::floor(insts_per_chain));
            const double frac =
                insts_per_chain - static_cast<double>(whole_insts);
            const int n_insts =
                whole_insts + (ws.rng.chance(frac) ? 1 : 0);
            for (int i = 0; i < n_insts; ++i) {
                double t = l1_pipes[static_cast<size_t>(ws.cu)].serve(
                    now, bytes_per_inst);
                const bool l1_hit =
                    ws.rng.chance(perf.cache.l1_hit_rate);
                if (l1_hit) {
                    t += l1_lat;
                } else {
                    t = l2_pipe.serve(t, bytes_per_inst);
                    const bool l2_hit =
                        ws.rng.chance(perf.cache.l2_hit_rate);
                    if (l2_hit) {
                        t += l2_lat;
                    } else {
                        t = dram_pipe.serve(t, bytes_per_inst);
                        t += dram_lat;
                    }
                }
                next_time = std::max(next_time, t);
            }
        }

        ++ws.phase;
        heap.push({next_time, seq++, ev.wave});
    }

    //
    // Results.  Extrapolate linearly when the launch was shrunk.
    //
    perf.kernel_time_s = makespan * scale;

    perf.t_compute = 0.0;
    perf.t_l1 = 0.0;
    for (int cu = 0; cu < cfg.num_cus; ++cu) {
        perf.t_compute = std::max(
            perf.t_compute,
            compute_pipes[static_cast<size_t>(cu)].busyTime());
        perf.t_l1 = std::max(
            perf.t_l1, l1_pipes[static_cast<size_t>(cu)].busyTime());
    }
    perf.t_compute *= scale;
    perf.t_l1 *= scale;
    perf.t_l2 = l2_pipe.busyTime() * scale;
    perf.t_dram = dram_pipe.busyTime() * scale;
    perf.t_atomic = atomic_pipe.busyTime() * scale;
    perf.achieved_dram_bw =
        makespan > 0 ? dram_pipe.totalWork() / makespan : 0.0;
    perf.dram_utilization =
        mem.peakBandwidth() > 0
            ? perf.achieved_dram_bw / mem.peakBandwidth()
            : 0.0;

    // Bound attribution: the busiest resource, or latency when nothing
    // is near saturation.
    struct { double t; BoundResource r; } terms[] = {
        { perf.t_compute, BoundResource::Compute },
        { perf.t_l1, BoundResource::L1 },
        { perf.t_l2, BoundResource::L2 },
        { perf.t_dram, BoundResource::Dram },
        { perf.t_atomic, BoundResource::Atomics },
    };
    double best = 0.0;
    perf.bound = BoundResource::Latency;
    for (const auto &term : terms) {
        if (term.t > best) {
            best = term.t;
            perf.bound = term.r;
        }
    }
    if (best < 0.60 * perf.kernel_time_s)
        perf.bound = BoundResource::Latency;

    //
    // Optional instrumentation dump, gem5-style.
    //
    if (stats) {
        stats->addScalar("waves_simulated", "wavefronts simulated")
            .set(static_cast<double>(waves.size()));
        stats->addScalar("workgroups_simulated",
                         "workgroups dispatched")
            .set(static_cast<double>(next_wg));
        stats->addScalar("events", "event-loop iterations")
            .set(static_cast<double>(events_processed));
        stats->addScalar("extrapolation", "launch shrink factor")
            .set(scale);
        stats->addScalar("makespan_us", "simulated makespan")
            .set(makespan * 1e6);
        stats->addScalar("l2_bytes", "bytes served by the L2 pipe")
            .set(l2_pipe.totalWork());
        stats->addScalar("dram_bytes", "bytes served by DRAM")
            .set(dram_pipe.totalWork());
        stats->addScalar("atomic_ops", "atomic operations serviced")
            .set(atomic_pipe.totalWork());
        stats->addFormula("dram_utilization",
                          "DRAM busy fraction of the makespan",
                          [busy = dram_pipe.busyTime(), makespan] {
                              return makespan > 0 ? busy / makespan
                                                  : 0.0;
                          });
    }

    return perf;
}

KernelPerf
EventModel::estimate(const KernelDesc &kernel, const GpuConfig &cfg) const
{
    return estimateImpl(kernel, cfg, nullptr);
}

KernelPerf
EventModel::estimate(const KernelDesc &kernel, const GpuConfig &cfg,
                     stats::StatGroup &stats) const
{
    return estimateImpl(kernel, cfg, &stats);
}

KernelPerf
EventModel::estimateImpl(const KernelDesc &kernel, const GpuConfig &cfg,
                         stats::StatGroup *stats) const
{
    static obs::Counter &evaluations =
        obs::Registry::instance().counter(
            "model.event.estimates",
            "event-model simulations");
    evaluations.inc();
    GPUSCALE_TRACE_SCOPE("event_sim/" + kernel.name);

    kernel.validate();
    cfg.validate();

    KernelPerf perf = simulateParallelPhase(kernel, cfg, stats);

    double serial_time = 0.0;
    if (kernel.serial_fraction > 0.0) {
        GpuConfig one_cu = cfg;
        one_cu.num_cus = 1;
        const KernelPerf serial_perf =
            simulateParallelPhase(kernel, one_cu, nullptr);
        serial_time = kernel.serial_fraction * serial_perf.kernel_time_s;
        perf.kernel_time_s =
            (1.0 - kernel.serial_fraction) * perf.kernel_time_s +
            serial_time;
    }

    const DispatchState disp =
        computeDispatch(kernel, cfg, perf.occupancy);
    perf.t_launch = disp.launch_overhead_s;

    const double per_launch = perf.kernel_time_s + perf.t_launch;
    perf.time_s = static_cast<double>(kernel.launches) * per_launch;
    perf.t_serial = static_cast<double>(kernel.launches) * serial_time;

    if (perf.t_launch > perf.kernel_time_s)
        perf.bound = BoundResource::Launch;

    const double total_flops =
        static_cast<double>(kernel.launches) *
        static_cast<double>(kernel.totalWorkItems()) *
        (kernel.valu_ops + 4.0 * kernel.sfu_ops);
    perf.achieved_gflops =
        perf.time_s > 0 ? total_flops / perf.time_s / 1e9 : 0.0;

    return perf;
}

} // namespace timing
} // namespace gpu
} // namespace gpuscale
