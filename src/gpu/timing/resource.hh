/**
 * @file
 * Bandwidth-server resources for the discrete-event timing model.
 *
 * A PipeResource is a work-conserving FIFO server: requests arrive
 * with a size in "work units" (bytes, SIMD-cycles, operations) and the
 * server drains them at a fixed rate.  Completion time for a request
 * arriving at `now` is max(now, next_free) + work / rate.  This is the
 * classic building block for interval-style GPU simulators: it gives
 * queueing delay and bandwidth saturation without modelling individual
 * bank conflicts.
 */

#ifndef GPUSCALE_GPU_TIMING_RESOURCE_HH
#define GPUSCALE_GPU_TIMING_RESOURCE_HH

#include <string>

namespace gpuscale {
namespace gpu {
namespace timing {

/** A rate-limited FIFO server. */
class PipeResource
{
  public:
    /**
     * @param name resource name for stats.
     * @param rate work units served per second; must be > 0.
     */
    PipeResource(std::string name, double rate);

    /**
     * Enqueue a request.
     *
     * @param now arrival time in seconds.
     * @param work request size in work units (>= 0).
     * @return completion time in seconds.
     */
    double serve(double now, double work);

    /** Earliest time a new request could start service. */
    double nextFree() const { return next_free_; }

    /** Total work served so far. */
    double totalWork() const { return total_work_; }

    /** Busy time accumulated so far (work / rate). */
    double busyTime() const { return busy_time_; }

    /** Utilization given the observed makespan. */
    double utilization(double makespan) const;

    const std::string &name() const { return name_; }
    double rate() const { return rate_; }

    /** Return to the just-constructed state. */
    void reset();

  private:
    std::string name_;
    double rate_;
    double next_free_ = 0.0;
    double total_work_ = 0.0;
    double busy_time_ = 0.0;
};

} // namespace timing
} // namespace gpu
} // namespace gpuscale

#endif // GPUSCALE_GPU_TIMING_RESOURCE_HH
