/**
 * @file
 * Wavefront-granularity discrete-event GPU timing model.
 *
 * Mechanistic counterpart to the AnalyticModel: workgroups are
 * dispatched greedily onto CU slots, each wavefront alternates compute
 * segments with memory-dependency chains, and every hardware resource
 * (per-CU SIMD pipe, per-CU L1 port, shared L2, shared DRAM, global
 * atomic unit) is a rate-limited FIFO server.  Cache level selection
 * is stochastic against the cache model's hit rates with a per-wave
 * deterministic RNG, so runs are bit-reproducible.
 *
 * This model is O(waves x memory chains) per launch and is intended
 * for validation (tests and the A1 model-fidelity ablation), not for
 * the full 238k-point census.
 */

#ifndef GPUSCALE_GPU_TIMING_EVENT_SIM_HH
#define GPUSCALE_GPU_TIMING_EVENT_SIM_HH

#include <cstdint>

#include "base/stats.hh"
#include "gpu/perf_model.hh"

namespace gpuscale {
namespace gpu {
namespace timing {

/** Tunables for the event-driven model. */
struct EventSimParams {
    /**
     * Cap on simulated wavefronts per launch.  Launches larger than
     * the cap are scaled: the simulator runs `cap` waves and
     * extrapolates the makespan linearly in the remaining work.  This
     * keeps validation runs bounded while preserving steady-state
     * contention behaviour.
     */
    int64_t max_simulated_waves = 200000;

    /** Seed mixed into per-wave RNG streams. */
    uint64_t seed = 0x5eedu;
};

/** The discrete-event model. */
class EventModel : public PerfModel
{
  public:
    EventModel() = default;
    explicit EventModel(EventSimParams params);

    KernelPerf estimate(const KernelDesc &kernel,
                        const GpuConfig &cfg) const override;

    /**
     * Like estimate(), additionally recording simulator statistics
     * (waves/events simulated, per-level bytes, resource busy times)
     * into the given group — the gem5-style instrumented run.
     */
    KernelPerf estimate(const KernelDesc &kernel, const GpuConfig &cfg,
                        stats::StatGroup &stats) const;

    std::string name() const override { return "event"; }

    const EventSimParams &params() const { return params_; }

  private:
    KernelPerf simulateParallelPhase(const KernelDesc &kernel,
                                     const GpuConfig &cfg,
                                     stats::StatGroup *stats) const;

    KernelPerf estimateImpl(const KernelDesc &kernel,
                            const GpuConfig &cfg,
                            stats::StatGroup *stats) const;

    EventSimParams params_;
};

} // namespace timing
} // namespace gpu
} // namespace gpuscale

#endif // GPUSCALE_GPU_TIMING_EVENT_SIM_HH
