/**
 * @file
 * PipeResource implementation.
 */

#include "resource.hh"

#include <algorithm>

#include "base/logging.hh"

namespace gpuscale {
namespace gpu {
namespace timing {

PipeResource::PipeResource(std::string name, double rate)
    : name_(std::move(name)), rate_(rate)
{
    panic_if(rate_ <= 0, "resource '%s' with non-positive rate %g",
             name_.c_str(), rate_);
}

double
PipeResource::serve(double now, double work)
{
    panic_if(work < 0, "resource '%s': negative work %g",
             name_.c_str(), work);
    panic_if(now < 0, "resource '%s': negative arrival time %g",
             name_.c_str(), now);

    const double start = std::max(now, next_free_);
    const double service = work / rate_;
    next_free_ = start + service;
    total_work_ += work;
    busy_time_ += service;
    return next_free_;
}

double
PipeResource::utilization(double makespan) const
{
    return makespan > 0 ? std::min(1.0, busy_time_ / makespan) : 0.0;
}

void
PipeResource::reset()
{
    next_free_ = 0.0;
    total_work_ = 0.0;
    busy_time_ = 0.0;
}

} // namespace timing
} // namespace gpu
} // namespace gpuscale
