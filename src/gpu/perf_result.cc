/**
 * @file
 * Shard-result serialization.
 *
 * A sweep shard's result — one runtime per grid point — crosses two
 * persistence boundaries: the disk sweep cache and the census
 * checkpoint journal.  Both need the identical property: a vector
 * written on one run and read on another must be *bitwise* the same
 * doubles, or a resumed/cached census would drift from the golden
 * data.  Centralizing the codec here means there is exactly one
 * format to get that right in (shortest-round-trip to_chars via
 * formatDoubleShortest, parsed back with parseDouble).
 *
 * Wire format: "<count>:<v0>,<v1>,..." on a single line; no locale
 * dependence, no whitespace.
 */

#include "perf_result.hh"

#include "base/string_util.hh"

namespace gpuscale {
namespace gpu {

std::string
serializeRuntimes(const std::vector<double> &runtimes)
{
    std::string out = std::to_string(runtimes.size());
    out += ':';
    for (size_t i = 0; i < runtimes.size(); ++i) {
        if (i > 0)
            out += ',';
        out += formatDoubleShortest(runtimes[i]);
    }
    return out;
}

std::optional<std::vector<double>>
parseRuntimes(std::string_view text)
{
    const size_t colon = text.find(':');
    if (colon == std::string_view::npos)
        return std::nullopt;
    const std::optional<double> count =
        parseDouble(text.substr(0, colon));
    if (!count || *count < 0 ||
        *count != static_cast<size_t>(*count))
        return std::nullopt;

    std::vector<double> values;
    values.reserve(static_cast<size_t>(*count));
    size_t pos = colon + 1;
    while (pos < text.size()) {
        size_t comma = text.find(',', pos);
        if (comma == std::string_view::npos)
            comma = text.size();
        const std::optional<double> v =
            parseDouble(text.substr(pos, comma - pos));
        if (!v)
            return std::nullopt;
        values.push_back(*v);
        pos = comma + 1;
    }
    if (values.size() != static_cast<size_t>(*count))
        return std::nullopt;
    return values;
}

} // namespace gpu
} // namespace gpuscale
