/**
 * @file
 * Flat structure-of-arrays operands and the stage-3 kernel of the
 * batched analytic census walk.
 *
 * The analytic model's grid evaluation is staged by how often each
 * quantity changes (see AnalyticModel::evaluateGrid): stages 1-2
 * hoist kernel invariants and per-CU machine state into the plain
 * double arrays below, and stage 3 — runBatch() — is a single
 * contiguous loop over (core clock, memory clock) doing only
 * clock-domain arithmetic: no virtual calls, no GpuConfig
 * materialization, results written straight into a flat runtime
 * vector.  The loop body is branch-light on purpose so the compiler
 * auto-vectorizes it (ci/check_vectorization.sh asserts that it
 * does; docs/performance.md explains how to read the report).
 *
 * Bitwise contract: every expression here mirrors, operation for
 * operation, the formula the scalar estimate() path uses — the
 * shared helpers below are *called by* the scalar path — so the
 * batched and scalar walks are bitwise identical.  The speedup comes
 * from layout and hoisting, never from reassociating the math; the
 * grid differential tests pin this point-for-point.
 */

#ifndef GPUSCALE_GPU_ANALYTIC_BATCH_HH
#define GPUSCALE_GPU_ANALYTIC_BATCH_HH

#include <algorithm>
#include <cstddef>
#include <vector>

namespace gpuscale {
namespace gpu {
namespace batch {

/** Kernel-invariant operands of the roofline terms (stage 1). */
struct KernelTerms {
    /** SIMD issue cycles over the whole launch. */
    double simd_cycles_total = 0.0;

    /** LDS lane operations over the whole launch. */
    double lds_lane_ops = 0.0;

    /** Bytes moved through the L1 at line granularity. */
    double l1_bytes = 0.0;

    /** Memory dependency chains per wavefront. */
    double chains = 0.0;

    /** Wavefronts over the whole launch. */
    double total_waves = 0.0;

    /** Whether the kernel issues atomics at all (term gate). */
    bool has_atomics = false;
};

/**
 * Flat per-(kernel, CU count) operands (stage 2): the CuState fields
 * the clock loop reads, pre-multiplied with the clock-independent
 * throughput units so stage 3 touches only plain doubles.
 */
struct CuTerms {
    /** Workgroup-quantization multiplier. */
    double imbalance = 1.0;

    /** Throughput units (CuUnits), copied flat. @{ */
    double simd_units = 0.0;
    double lds_units = 0.0;
    double l1_units = 0.0;
    double xbar_units = 0.0;
    /** @} */

    /** Bytes reaching the L2 / DRAM for this CU count. @{ */
    double l2_bytes = 0.0;
    double dram_bytes = 0.0;
    /** @} */

    /** total_atomics x retry multiplier (t_atomic numerator). */
    double atomic_num = 0.0;

    /** L1 hit fraction x L1 latency cycles (latency numerator). */
    double l1_lat_num = 0.0;

    /** Access fractions resolved at the L2 / in DRAM. @{ */
    double l2_frac = 0.0;
    double dram_frac = 0.0;
    /** @} */

    /** Concurrent wavefronts for the latency bound. */
    double concurrency = 1.0;
};

/** The core-clock-domain roofline terms for one (CU, core clock). */
struct CoreTerms {
    double t_compute = 0.0;
    double t_lds = 0.0;
    double t_l1 = 0.0;
    double t_l2 = 0.0;
    double t_atomic = 0.0;
    double t_latency = 0.0;

    /** max() of the six terms above (everything but t_dram). */
    double base_max = 0.0;
};

/**
 * Core-clock-domain arithmetic for one (CU count, core clock) pair.
 *
 * Called by the scalar estimate() path with per-point operands and by
 * the batched walk with hoisted ones; since both feed it bitwise-equal
 * inputs, the outputs agree bitwise too.  Only t_dram depends on the
 * memory clock, so everything here hoists out of the stage-3 loop.
 */
inline CoreTerms
computeCoreTerms(const KernelTerms &kt, const CuTerms &cu,
                 double clk_hz, double core_time_s, double l2_hop_s,
                 double dram_hop_s, double atomic_rate)
{
    CoreTerms ct;
    ct.t_compute =
        kt.simd_cycles_total / (cu.simd_units * clk_hz) * cu.imbalance;
    ct.t_lds =
        kt.lds_lane_ops / (cu.lds_units * clk_hz) * cu.imbalance;
    ct.t_l1 = kt.l1_bytes / (cu.l1_units * clk_hz) * cu.imbalance;
    ct.t_l2 = cu.l2_bytes / (cu.xbar_units * clk_hz);
    // The gate keeps a 0/0 NaN out of kernels without atomics, and
    // matches the scalar path's `total_atomics > 0` branch.
    ct.t_atomic =
        kt.has_atomics ? cu.atomic_num / atomic_rate : 0.0;
    // Closed-system latency bound: with N concurrent wavefronts each
    // alternating compute segments and memory-dependency chains, the
    // asymptotic runtime is total_waves x wave_time / N using the
    // *unloaded* latency (bounds analysis for closed queueing
    // networks).  Saturation is not modelled by inflating latency —
    // the bandwidth terms already in the roofline max() cap the
    // throughput — which keeps the model monotone in both clocks.
    const double avg_latency = cu.l1_lat_num / clk_hz +
                               cu.l2_frac * l2_hop_s +
                               cu.dram_frac * dram_hop_s;
    const double wave_time = core_time_s + kt.chains * avg_latency;
    ct.t_latency = kt.total_waves * wave_time / cu.concurrency;
    ct.base_max = std::max({ct.t_compute, ct.t_lds, ct.t_l1, ct.t_l2,
                            ct.t_atomic, ct.t_latency});
    return ct;
}

/**
 * Everything stage 3 consumes, hoisted flat.  Built by
 * AnalyticModel::prepareBatch(); axis vectors are indexed like
 * GridPlanes.
 */
struct BatchPlan {
    /** Stage-1 kernel invariants. */
    KernelTerms kernel;

    /** Stage-2 state per CU-axis value. */
    std::vector<CuTerms> cu;

    /** Stage-2 state of the one-CU machine the Amdahl phase runs on. */
    CuTerms serial_cu;

    /** Whether the kernel has a serial fraction at all. */
    bool has_serial = false;

    /** Amdahl weights; parallel_fraction is 1 - serial_fraction. @{ */
    double serial_fraction = 0.0;
    double parallel_fraction = 1.0;
    /** @} */

    /** Launch count and per-launch host overhead. @{ */
    double launches = 0.0;
    double launch_overhead_s = 0.0;
    /** @} */

    /** Per core-clock axis value. @{ */
    std::vector<double> core_clk_hz;
    std::vector<double> core_time_s;
    std::vector<double> l2_hop_s;
    std::vector<double> dram_hop_s;
    std::vector<double> atomic_rate;
    /** @} */

    /** Per memory-clock axis value. */
    std::vector<double> dram_bw;

    /** Total flops over the run (for achieved-rate reporting). */
    double total_flops = 0.0;
};

/**
 * Stage 3: evaluate every grid point of the plan, writing time_s per
 * point into `out` (ConfigGrid::flatten order, cu slowest).  `out`
 * must hold cu.size() x core_clk_hz.size() x dram_bw.size() doubles.
 *
 * Lives in its own translation unit so the vectorization-report
 * flags (-fopt-info-vec, GPUSCALE_VEC_REPORT) stay local to it.
 */
void runBatch(const BatchPlan &plan, double *out);

} // namespace batch
} // namespace gpu
} // namespace gpuscale

#endif // GPUSCALE_GPU_ANALYTIC_BATCH_HH
