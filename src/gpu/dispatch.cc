/**
 * @file
 * Dispatch model implementation.
 */

#include "dispatch.hh"

#include <algorithm>

#include "base/logging.hh"
#include "gpu_config.hh"
#include "kernel_desc.hh"
#include "occupancy.hh"

namespace gpuscale {
namespace gpu {

DispatchState
computeDispatch(const KernelDesc &kernel, const GpuConfig &cfg,
                const Occupancy &occ)
{
    DispatchState state;

    const int64_t capacity =
        static_cast<int64_t>(occ.wgs_per_cu) * cfg.num_cus;
    panic_if(capacity < 1, "dispatch with zero machine capacity");

    state.batches = (kernel.num_workgroups + capacity - 1) / capacity;
    const double ideal_batches =
        static_cast<double>(kernel.num_workgroups) /
        static_cast<double>(capacity);
    state.tail_factor =
        static_cast<double>(state.batches) / std::max(ideal_batches, 1e-12);

    // A launch smaller than one full batch cannot use the whole
    // machine at all; fold that into fill as well.
    state.machine_fill = 1.0 / state.tail_factor;

    state.launch_overhead_s = kernel.host_overhead_us * 1e-6;
    return state;
}

} // namespace gpu
} // namespace gpuscale
