/**
 * @file
 * DRAM model implementation.
 */

#include "memory_system.hh"

#include <algorithm>

#include "base/logging.hh"
#include "gpu_config.hh"

namespace gpuscale {
namespace gpu {

namespace {

/** Utilization beyond which the queueing term is clamped. */
constexpr double kMaxUtilization = 0.95;

} // namespace

MemorySystem::MemorySystem(const GpuConfig &cfg)
    : peak_bw_(cfg.effectiveDramBw()),
      unloaded_latency_s_(cfg.dram_latency_ns * 1e-9)
{
    panic_if(peak_bw_ <= 0, "memory system with zero bandwidth");
}

DramState
MemorySystem::evaluate(double demand_bw) const
{
    panic_if(demand_bw < 0, "negative bandwidth demand %g", demand_bw);

    DramState state;
    state.peak_bw = peak_bw_;
    state.achieved_bw = std::min(demand_bw, peak_bw_);
    state.utilization =
        std::min(state.achieved_bw / peak_bw_, kMaxUtilization);

    // M/D/1-flavoured latency inflation: service time is amortized
    // into the bandwidth term; waiting time scales the unloaded
    // latency by rho / (2 (1 - rho)).
    const double rho = state.utilization;
    const double queue_factor = 1.0 + rho / (2.0 * (1.0 - rho));
    state.loaded_latency_s = unloaded_latency_s_ * queue_factor;
    return state;
}

double
MemorySystem::unloadedLatency() const
{
    return unloaded_latency_s_;
}

double
MemorySystem::peakBandwidth() const
{
    return peak_bw_;
}

} // namespace gpu
} // namespace gpuscale
