/**
 * @file
 * Cache model implementation.
 */

#include "cache_model.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "gpu_config.hh"
#include "kernel_desc.hh"
#include "occupancy.hh"

namespace gpuscale {
namespace gpu {

double
capacityFactor(double capacity, double footprint)
{
    panic_if(capacity <= 0, "capacityFactor: non-positive capacity %g",
             capacity);
    if (footprint <= 0)
        return 1.0;
    // 1 - exp(-c/f): ~1 when the set fits, ~c/f when oversubscribed
    // (the fraction of the set that is resident under LRU churn).
    return 1.0 - std::exp(-capacity / footprint);
}

CacheBehavior
computeCacheBehavior(const KernelDesc &kernel, const GpuConfig &cfg,
                     const Occupancy &occ)
{
    CacheBehavior out;

    // --- L1 (private per CU): intra-workgroup reuse.
    const double wgs_per_used_cu =
        occ.used_cus > 0
            ? static_cast<double>(occ.active_wgs) / occ.used_cus
            : 0.0;
    const double l1_footprint =
        wgs_per_used_cu * kernel.footprint_bytes_per_wg +
        // Each CU streams the shared data through its own L1 as well.
        kernel.shared_footprint_bytes;
    out.l1_hit_rate =
        kernel.l1_reuse * capacityFactor(cfg.l1_bytes_per_cu, l1_footprint);

    // --- L2 (shared): inter-workgroup and read-shared reuse.  The
    // resident set scales with *machine-wide* active workgroups, which
    // is what couples hit rate to the number of enabled CUs.
    out.l2_footprint_bytes =
        kernel.shared_footprint_bytes +
        static_cast<double>(occ.active_wgs) * kernel.footprint_bytes_per_wg;
    out.l2_hit_rate =
        kernel.l2_reuse *
        capacityFactor(cfg.l2CapacityBytes(), out.l2_footprint_bytes);

    // --- Traffic multipliers, per *useful* requested byte.  Poor
    // coalescing fetches mostly-unused lines, inflating every level
    // below the L1.
    const double miss_amplification = 1.0 / kernel.coalescing;
    out.l2_traffic_per_byte = (1.0 - out.l1_hit_rate) * miss_amplification;
    out.dram_traffic_per_byte =
        out.l2_traffic_per_byte * (1.0 - out.l2_hit_rate);

    return out;
}

} // namespace gpu
} // namespace gpuscale
