/**
 * @file
 * ConfigGrid: the gpu-layer view of a dense 3-axis configuration
 * grid.
 *
 * The batched model entry point (PerfModel::evaluateGrid) needs the
 * grid *structure* — which of the three swept knobs changes fastest —
 * not just a flat list of configurations, because hoisting
 * kernel-invariant and CU-invariant work out of the inner loops is
 * what makes the batched path fast.  scaling::ConfigSpace converts to
 * this type (scaling sits above gpu in the layer order, so the
 * dependency points the right way).
 *
 * Flattening matches ConfigSpace: cu is the slowest axis, memory
 * clock the fastest, i.e. flat = (cu_i * n_core + core_i) * n_mem +
 * mem_i.
 */

#ifndef GPUSCALE_GPU_CONFIG_GRID_HH
#define GPUSCALE_GPU_CONFIG_GRID_HH

#include <cstddef>
#include <string>
#include <vector>

#include "gpu_config.hh"

namespace gpuscale {
namespace gpu {

/** A dense (compute units x core clock x memory clock) grid. */
struct ConfigGrid {
    /** Compute-unit axis, strictly increasing. */
    std::vector<int> cu_values;

    /** Core-clock axis in MHz, strictly increasing. */
    std::vector<double> core_clks_mhz;

    /** Memory-clock axis in MHz, strictly increasing. */
    std::vector<double> mem_clks_mhz;

    /** Fixed microarchitecture parameters every point inherits. */
    GpuConfig base;

    size_t numCu() const { return cu_values.size(); }
    size_t numCoreClk() const { return core_clks_mhz.size(); }
    size_t numMemClk() const { return mem_clks_mhz.size(); }
    size_t size() const { return numCu() * numCoreClk() * numMemClk(); }

    /** Flatten axis indices to a linear index (cu slowest). */
    size_t flatten(size_t cu_i, size_t core_i, size_t mem_i) const;

    /** Materialize the configuration at the given axis indices. */
    GpuConfig at(size_t cu_i, size_t core_i, size_t mem_i) const;

    /** fatal() if an axis is empty, unsorted, or a point is invalid. */
    void validate() const;

    /**
     * Locale-independent serialization of the axes and the base
     * configuration's swept knobs, for sweep-cache keys.  Two grids
     * with equal fingerprints produce identical configuration
     * sequences.
     */
    std::string fingerprint() const;
};

} // namespace gpu
} // namespace gpuscale

#endif // GPUSCALE_GPU_CONFIG_GRID_HH
