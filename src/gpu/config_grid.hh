/**
 * @file
 * ConfigGrid: the gpu-layer view of a dense 3-axis configuration
 * grid.
 *
 * The batched model entry point (PerfModel::evaluateGrid) needs the
 * grid *structure* — which of the three swept knobs changes fastest —
 * not just a flat list of configurations, because hoisting
 * kernel-invariant and CU-invariant work out of the inner loops is
 * what makes the batched path fast.  scaling::ConfigSpace converts to
 * this type (scaling sits above gpu in the layer order, so the
 * dependency points the right way).
 *
 * Flattening matches ConfigSpace: cu is the slowest axis, memory
 * clock the fastest, i.e. flat = (cu_i * n_core + core_i) * n_mem +
 * mem_i.
 */

#ifndef GPUSCALE_GPU_CONFIG_GRID_HH
#define GPUSCALE_GPU_CONFIG_GRID_HH

#include <cstddef>
#include <string>
#include <vector>

#include "gpu_config.hh"

namespace gpuscale {
namespace gpu {

/**
 * Clock-independent throughput units for one compute-unit count.
 *
 * Every field is an exact product of small integers, so scaling by a
 * clock later rounds exactly once — the same single rounding the
 * scalar path performs when it computes e.g. GpuConfig::peakL1Bw()
 * directly.  That, plus the monotonicity of IEEE multiplication
 * (min(a, b) * clk == min(a * clk, b * clk) for positive clk), is
 * what keeps the plane-based batched walk bitwise identical to the
 * scalar one.
 */
struct CuUnits {
    /** num_cus as a double. */
    double cus = 0.0;

    /** SIMDs across active CUs (t_compute denominator / clk). */
    double simd_units = 0.0;

    /** LDS lanes serviced per cycle across active CUs. */
    double lds_units = 0.0;

    /** L1 bytes per cycle across active CUs. */
    double l1_units = 0.0;

    /** Crossbar bytes per cycle: min(L2 slice ports, CU ports). */
    double xbar_units = 0.0;
};

/**
 * Core-clock-domain derived values for one configuration: the
 * latency hops and rates the analytic model's clock loop consumes.
 * Derived through the same interconnect/memory helpers as the scalar
 * path, so the values are bitwise identical by construction.
 */
struct ClockTerms {
    /** Core clock in Hz. */
    double clk_hz = 0.0;

    /** Global atomic operations per second. */
    double atomic_rate = 0.0;

    /** L2 hit latency plus crossbar traversal, in seconds. */
    double l2_hop_s = 0.0;

    /** L2 miss latency plus unloaded DRAM latency, in seconds. */
    double dram_hop_s = 0.0;
};

/** Derive the clock-independent units for a CU count. */
CuUnits computeCuUnits(int num_cus, const GpuConfig &arch);

/** Derive the core-clock-domain values for a configuration. */
ClockTerms computeClockTerms(const GpuConfig &cfg);

/**
 * Structure-of-arrays view of a grid: per-axis value arrays plus the
 * derived per-CU and per-clock vectors, ready for a flat batched
 * walk.  Materialized by ConfigGrid::planes(); each vector is indexed
 * by the corresponding axis index.
 */
struct GridPlanes {
    /** Per CU-axis value (CuUnits each). */
    std::vector<CuUnits> cu;

    /** Per core-clock axis value. @{ */
    std::vector<double> core_clk_hz;
    std::vector<double> atomic_rate;
    std::vector<double> l2_hop_s;
    std::vector<double> dram_hop_s;
    /** @} */

    /** Per memory-clock axis value. @{ */
    std::vector<double> mem_clk_hz;
    std::vector<double> dram_bw;
    /** @} */
};

/** A dense (compute units x core clock x memory clock) grid. */
struct ConfigGrid {
    /** Compute-unit axis, strictly increasing. */
    std::vector<int> cu_values;

    /** Core-clock axis in MHz, strictly increasing. */
    std::vector<double> core_clks_mhz;

    /** Memory-clock axis in MHz, strictly increasing. */
    std::vector<double> mem_clks_mhz;

    /** Fixed microarchitecture parameters every point inherits. */
    GpuConfig base;

    size_t numCu() const { return cu_values.size(); }
    size_t numCoreClk() const { return core_clks_mhz.size(); }
    size_t numMemClk() const { return mem_clks_mhz.size(); }
    size_t size() const { return numCu() * numCoreClk() * numMemClk(); }

    /** Flatten axis indices to a linear index (cu slowest). */
    size_t flatten(size_t cu_i, size_t core_i, size_t mem_i) const;

    /** Materialize the configuration at the given axis indices. */
    GpuConfig at(size_t cu_i, size_t core_i, size_t mem_i) const;

    /** fatal() if an axis is empty, unsorted, or a point is invalid. */
    void validate() const;

    /**
     * Materialize the structure-of-arrays plane view.  Cheap (one
     * CuUnits/ClockTerms derivation per axis *value*, not per grid
     * point); call it fresh per batched evaluation.
     */
    GridPlanes planes() const;

    /**
     * Locale-independent serialization of the axes and the base
     * configuration's swept knobs, for sweep-cache keys.  Two grids
     * with equal fingerprints produce identical configuration
     * sequences.
     */
    std::string fingerprint() const;
};

} // namespace gpu
} // namespace gpuscale

#endif // GPUSCALE_GPU_CONFIG_GRID_HH
