/**
 * @file
 * GpuConfig implementation.
 */

#include "gpu_config.hh"

#include "base/logging.hh"

namespace gpuscale {
namespace gpu {

double
GpuConfig::peakGflops() const
{
    const double lanes = static_cast<double>(num_cus) * simds_per_cu *
                         lanes_per_simd;
    // One FMA (2 flops) per lane per cycle.
    return lanes * 2.0 * coreClkHz() / 1e9;
}

double
GpuConfig::peakDramBw() const
{
    return static_cast<double>(dram_bus_bytes) * dram_transfers_per_clk *
           memClkHz();
}

double
GpuConfig::effectiveDramBw() const
{
    return peakDramBw() * dram_efficiency;
}

double
GpuConfig::peakL2Bw() const
{
    return static_cast<double>(l2_slices) * l2_bytes_per_cycle_per_slice *
           coreClkHz();
}

double
GpuConfig::peakL1Bw() const
{
    return static_cast<double>(num_cus) * l1_bytes_per_cycle * coreClkHz();
}

double
GpuConfig::l2CapacityBytes() const
{
    return static_cast<double>(l2_slices) * l2_bytes_per_slice;
}

void
GpuConfig::validate() const
{
    fatal_if(num_cus < 1, "config %s: need at least 1 CU", id().c_str());
    fatal_if(core_clk_mhz <= 0, "config %s: non-positive core clock",
             id().c_str());
    fatal_if(mem_clk_mhz <= 0, "config %s: non-positive memory clock",
             id().c_str());
    fatal_if(simds_per_cu < 1 || lanes_per_simd < 1,
             "config %s: malformed SIMD geometry", id().c_str());
    fatal_if(wavefront_size != simds_per_cu * lanes_per_simd &&
                 wavefront_size % lanes_per_simd != 0,
             "config %s: wavefront size %d not issueable on %d-lane SIMDs",
             id().c_str(), wavefront_size, lanes_per_simd);
    fatal_if(max_waves_per_simd < 1 || max_wgs_per_cu < 1,
             "config %s: zero occupancy limits", id().c_str());
    fatal_if(vgprs_per_simd < 1, "config %s: no registers", id().c_str());
    fatal_if(lds_bytes_per_cu < 0 || l1_bytes_per_cu < 1,
             "config %s: malformed CU storage", id().c_str());
    fatal_if(l2_slices < 1 || l2_bytes_per_slice < 1,
             "config %s: malformed L2", id().c_str());
    fatal_if(dram_bus_bytes < 1 || dram_transfers_per_clk < 1,
             "config %s: malformed DRAM interface", id().c_str());
    fatal_if(dram_efficiency <= 0.0 || dram_efficiency > 1.0,
             "config %s: DRAM efficiency %f outside (0, 1]",
             id().c_str(), dram_efficiency);
}

std::string
GpuConfig::id() const
{
    return strprintf("cu%d_c%.0f_m%.0f", num_cus, core_clk_mhz,
                     mem_clk_mhz);
}

std::string
GpuConfig::describe() const
{
    return strprintf(
        "%d CUs @ %.0f MHz, mem %.0f MHz (%.0f GFLOP/s, %.1f GB/s DRAM, "
        "%.1f GB/s L2)",
        num_cus, core_clk_mhz, mem_clk_mhz, peakGflops(),
        effectiveDramBw() / 1e9, peakL2Bw() / 1e9);
}

GpuConfig
makeMaxConfig()
{
    GpuConfig cfg;
    cfg.num_cus = 44;
    cfg.core_clk_mhz = 1000.0;
    cfg.mem_clk_mhz = 1250.0;
    return cfg;
}

GpuConfig
makeMinConfig()
{
    GpuConfig cfg;
    cfg.num_cus = 4;
    cfg.core_clk_mhz = 200.0;
    cfg.mem_clk_mhz = 150.0;
    return cfg;
}

GpuConfig
makeMidConfig()
{
    GpuConfig cfg;
    cfg.num_cus = 24;
    cfg.core_clk_mhz = 600.0;
    cfg.mem_clk_mhz = 700.0;
    return cfg;
}

} // namespace gpu
} // namespace gpuscale
