/**
 * @file
 * Analytic model implementation.
 */

#include "analytic_model.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "obs/metrics.hh"
#include "cache_model.hh"
#include "dispatch.hh"
#include "gpu_config.hh"
#include "interconnect.hh"
#include "kernel_desc.hh"
#include "memory_system.hh"
#include "occupancy.hh"

namespace gpuscale {
namespace gpu {

std::string
boundResourceName(BoundResource r)
{
    switch (r) {
      case BoundResource::Compute: return "compute";
      case BoundResource::Lds:     return "lds";
      case BoundResource::L1:      return "l1";
      case BoundResource::L2:      return "l2";
      case BoundResource::Dram:    return "dram";
      case BoundResource::Latency: return "latency";
      case BoundResource::Atomics: return "atomics";
      case BoundResource::Launch:  return "launch";
    }
    panic("unknown bound resource %d", static_cast<int>(r));
}

AnalyticModel::AnalyticModel(AnalyticParams params)
    : params_(params)
{
}

KernelPerf
AnalyticModel::estimateParallelPhase(const KernelDesc &kernel,
                                     const GpuConfig &cfg) const
{
    KernelPerf perf;
    perf.occupancy = computeOccupancy(kernel, cfg);
    perf.cache = computeCacheBehavior(kernel, cfg, perf.occupancy);

    const Occupancy &occ = perf.occupancy;
    const double clk = cfg.coreClkHz();
    const double total_waves =
        static_cast<double>(kernel.totalWaves(cfg));
    const double total_items =
        static_cast<double>(kernel.totalWorkItems());

    //
    // Workgroup quantization: each CU drains ceil(nwg/cus) workgroups
    // while an ideally divisible launch would drain nwg/cus.  This is
    // the multiplier on every CU-local throughput term, and it is what
    // makes small launches plateau (and saw-tooth) as CUs are added.
    //
    const double wgs = static_cast<double>(kernel.num_workgroups);
    const double cus = static_cast<double>(cfg.num_cus);
    perf.imbalance_factor = std::ceil(wgs / cus) / (wgs / cus);

    //
    // CU-local issue bounds.
    //
    // Each wavefront instruction occupies a SIMD for
    // wavefront_size / lanes_per_simd cycles (4 on GCN); divergence
    // wastes issued cycles; transcendentals run at quarter rate.
    const double div_mult = 1.0 / (1.0 - kernel.branch_divergence);
    const int issue_cycles_per_inst =
        cfg.wavefront_size / cfg.lanes_per_simd;
    const double compute_cycles_per_wave =
        (kernel.valu_ops + 4.0 * kernel.sfu_ops) *
        issue_cycles_per_inst * div_mult;

    const double simd_cycles_total = total_waves * compute_cycles_per_wave;
    const double simd_rate = cus * cfg.simds_per_cu * clk;
    perf.t_compute =
        simd_cycles_total / simd_rate * perf.imbalance_factor;

    // LDS: lds_ops per work-item, lds_lanes_per_cycle serviced per CU.
    const double lds_lane_ops = total_items * kernel.lds_ops;
    perf.t_lds = lds_lane_ops / (cus * cfg.lds_lanes_per_cycle * clk) *
                 perf.imbalance_factor;

    //
    // Memory traffic.
    //
    const double useful_bytes = kernel.totalBytesRequested();
    // Every access touches the L1 at line granularity.
    const double l1_bytes = useful_bytes / kernel.coalescing;
    const double l2_bytes = useful_bytes * perf.cache.l2_traffic_per_byte;
    const double dram_bytes =
        useful_bytes * perf.cache.dram_traffic_per_byte;

    perf.t_l1 = l1_bytes / cfg.peakL1Bw() * perf.imbalance_factor;

    const XbarState xbar = computeXbar(cfg);
    perf.t_l2 = l2_bytes / xbar.effective_bw;

    const MemorySystem mem(cfg);
    perf.t_dram = dram_bytes / mem.peakBandwidth();

    //
    // Atomics: a fixed global pipeline plus contention-driven retries
    // that grow with the number of concurrently active waves.  Retry
    // growth is the mechanism that turns CU scaling *negative* for
    // reduction-style kernels.
    //
    const double total_atomics = total_items * kernel.atomic_ops;
    if (total_atomics > 0) {
        const double retry_mult =
            1.0 + kernel.atomic_contention * params_.atomic_retry_scale *
                      static_cast<double>(occ.active_waves) /
                      params_.atomic_reference_waves;
        perf.t_atomic = total_atomics * retry_mult /
                        (cfg.atomic_ops_per_cycle * clk);
    }

    //
    // Latency bound with a short fixed-point on DRAM queueing.
    //
    const double mem_insts_per_wave =
        kernel.mem_loads + kernel.mem_stores;
    const double chains = mem_insts_per_wave / kernel.mlp;
    const double l1_frac = perf.cache.l1_hit_rate;
    const double l2_frac = (1.0 - l1_frac) * perf.cache.l2_hit_rate;
    const double dram_access_frac =
        (1.0 - perf.cache.l1_hit_rate) * (1.0 - perf.cache.l2_hit_rate);

    const double barrier_cycles =
        kernel.barriers * (params_.barrier_base_cycles +
                           params_.barrier_cycles_per_wave *
                               kernel.wavesPerWg(cfg));

    const double concurrency =
        std::max<double>(1.0, static_cast<double>(occ.active_waves));

    //
    // Closed-system latency bound: with N concurrent wavefronts each
    // alternating compute segments and memory-dependency chains, the
    // asymptotic runtime is total_waves x wave_time / N using the
    // *unloaded* latency (bounds analysis for closed queueing
    // networks).  Saturation is not modelled by inflating latency —
    // the bandwidth terms already in the roofline max() cap the
    // throughput — which keeps the model monotone in both clocks.
    //
    const double avg_latency =
        l1_frac * cfg.l1_latency_cycles / clk +
        l2_frac * (cfg.l2_latency_cycles / clk + xbar.latency_s) +
        dram_access_frac *
            (cfg.l2_latency_cycles / clk + mem.unloadedLatency());
    const double wave_time =
        compute_cycles_per_wave / clk + barrier_cycles / clk +
        chains * avg_latency;
    perf.t_latency = total_waves * wave_time / concurrency;

    const double t_core =
        std::max({perf.t_compute, perf.t_lds, perf.t_l1, perf.t_l2,
                  perf.t_dram, perf.t_atomic, perf.t_latency});
    perf.kernel_time_s = t_core;

    // Delivered-bandwidth bookkeeping (reporting only).
    const double demand_bw = t_core > 0 ? dram_bytes / t_core : 0.0;
    const DramState dram_state = mem.evaluate(demand_bw);
    perf.achieved_dram_bw = dram_state.achieved_bw;
    perf.dram_utilization = dram_state.utilization;

    const double max_term = t_core;
    perf.bound = BoundResource::Compute;
    struct { double t; BoundResource r; } terms[] = {
        { perf.t_compute, BoundResource::Compute },
        { perf.t_lds, BoundResource::Lds },
        { perf.t_l1, BoundResource::L1 },
        { perf.t_l2, BoundResource::L2 },
        { perf.t_dram, BoundResource::Dram },
        { perf.t_atomic, BoundResource::Atomics },
        { perf.t_latency, BoundResource::Latency },
    };
    for (const auto &term : terms) {
        if (term.t >= max_term) {
            perf.bound = term.r;
            break;
        }
    }

    return perf;
}

KernelPerf
AnalyticModel::estimate(const KernelDesc &kernel,
                        const GpuConfig &cfg) const
{
    static obs::Counter &evaluations =
        obs::Registry::instance().counter(
            "model.analytic.estimates",
            "analytic-model evaluations");
    evaluations.inc();

    kernel.validate();
    cfg.validate();

    KernelPerf perf = estimateParallelPhase(kernel, cfg);

    //
    // Amdahl: a serial fraction of the work executes at single-CU
    // throughput regardless of the machine size.
    //
    double serial_time = 0.0;
    if (kernel.serial_fraction > 0.0) {
        GpuConfig one_cu = cfg;
        one_cu.num_cus = 1;
        const KernelPerf serial_perf =
            estimateParallelPhase(kernel, one_cu);
        serial_time = kernel.serial_fraction * serial_perf.kernel_time_s;
        perf.kernel_time_s =
            (1.0 - kernel.serial_fraction) * perf.kernel_time_s +
            serial_time;
    }

    const DispatchState disp = computeDispatch(kernel, cfg,
                                               perf.occupancy);
    perf.t_launch = disp.launch_overhead_s;

    const double per_launch = perf.kernel_time_s + perf.t_launch;
    perf.time_s = static_cast<double>(kernel.launches) * per_launch;
    perf.t_serial =
        static_cast<double>(kernel.launches) * serial_time;

    if (perf.t_launch > perf.kernel_time_s)
        perf.bound = BoundResource::Launch;

    //
    // Delivered rates over the whole run.
    //
    const double total_flops =
        static_cast<double>(kernel.launches) *
        static_cast<double>(kernel.totalWorkItems()) *
        (kernel.valu_ops + 4.0 * kernel.sfu_ops);
    perf.achieved_gflops =
        perf.time_s > 0 ? total_flops / perf.time_s / 1e9 : 0.0;

    return perf;
}

} // namespace gpu
} // namespace gpuscale
