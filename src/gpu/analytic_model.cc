/**
 * @file
 * Analytic model implementation.
 *
 * The evaluation is staged so the batched census walk can hoist work
 * out of the inner loops (see evaluateGrid() in the header):
 * Invariants captures everything derived from the kernel and the
 * fixed microarchitecture alone, CuState everything that additionally
 * depends on the compute-unit count, and parallelPhase() performs
 * only the clock-domain arithmetic.  The scalar estimate() runs the
 * exact same three stages per point, which is what keeps the two
 * paths bitwise identical.
 */

#include "analytic_model.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/string_util.hh"
#include "obs/metrics.hh"
#include "obs/sharded.hh"
#include "cache_model.hh"
#include "dispatch.hh"
#include "gpu_config.hh"
#include "interconnect.hh"
#include "kernel_desc.hh"
#include "memory_system.hh"
#include "occupancy.hh"

namespace gpuscale {
namespace gpu {

std::string
boundResourceName(BoundResource r)
{
    switch (r) {
      case BoundResource::Compute: return "compute";
      case BoundResource::Lds:     return "lds";
      case BoundResource::L1:      return "l1";
      case BoundResource::L2:      return "l2";
      case BoundResource::Dram:    return "dram";
      case BoundResource::Latency: return "latency";
      case BoundResource::Atomics: return "atomics";
      case BoundResource::Launch:  return "launch";
    }
    panic("unknown bound resource %d", static_cast<int>(r));
}

/**
 * Derived quantities that are constant across the whole grid: launch
 * geometry, instruction mix, and byte counts depend on the kernel and
 * the fixed microarchitecture only, never on the three swept knobs.
 */
struct AnalyticModel::Invariants {
    double total_waves = 0.0;
    double total_items = 0.0;
    double wgs = 0.0;
    double div_mult = 1.0;
    int issue_cycles_per_inst = 1;
    double compute_cycles_per_wave = 0.0;
    double simd_cycles_total = 0.0;
    double lds_lane_ops = 0.0;
    double useful_bytes = 0.0;
    double l1_bytes = 0.0;
    double total_atomics = 0.0;
    double chains = 0.0;
    double barrier_cycles = 0.0;
};

/**
 * Machine state that changes with the CU count but not with either
 * clock: occupancy, cache behaviour (the expensive exp() calls),
 * workgroup quantization, and dispatch.  On the paper grid this is
 * evaluated 11 times per kernel instead of 891.
 */
struct AnalyticModel::CuState {
    Occupancy occ;
    CacheBehavior cache;
    double imbalance = 1.0;
    double l2_bytes = 0.0;
    double dram_bytes = 0.0;
    double l1_frac = 0.0;
    double l2_frac = 0.0;
    double dram_access_frac = 0.0;
    double concurrency = 1.0;
    double retry_mult = 1.0;
    DispatchState disp;
};

AnalyticModel::AnalyticModel(AnalyticParams params)
    : params_(params)
{
}

std::string
AnalyticModel::fingerprint() const
{
    return "analytic(" +
           formatDoubleShortest(params_.barrier_cycles_per_wave) + "," +
           formatDoubleShortest(params_.barrier_base_cycles) + "," +
           formatDoubleShortest(params_.atomic_retry_scale) + "," +
           formatDoubleShortest(params_.atomic_reference_waves) + ")";
}

AnalyticModel::Invariants
AnalyticModel::computeInvariants(const KernelDesc &kernel,
                                 const GpuConfig &arch) const
{
    Invariants inv;
    inv.total_waves = static_cast<double>(kernel.totalWaves(arch));
    inv.total_items = static_cast<double>(kernel.totalWorkItems());
    inv.wgs = static_cast<double>(kernel.num_workgroups);

    // Each wavefront instruction occupies a SIMD for
    // wavefront_size / lanes_per_simd cycles (4 on GCN); divergence
    // wastes issued cycles; transcendentals run at quarter rate.
    inv.div_mult = 1.0 / (1.0 - kernel.branch_divergence);
    inv.issue_cycles_per_inst = arch.wavefront_size / arch.lanes_per_simd;
    inv.compute_cycles_per_wave =
        (kernel.valu_ops + 4.0 * kernel.sfu_ops) *
        inv.issue_cycles_per_inst * inv.div_mult;
    inv.simd_cycles_total =
        inv.total_waves * inv.compute_cycles_per_wave;

    inv.lds_lane_ops = inv.total_items * kernel.lds_ops;

    inv.useful_bytes = kernel.totalBytesRequested();
    // Every access touches the L1 at line granularity.
    inv.l1_bytes = inv.useful_bytes / kernel.coalescing;

    inv.total_atomics = inv.total_items * kernel.atomic_ops;

    const double mem_insts_per_wave =
        kernel.mem_loads + kernel.mem_stores;
    inv.chains = mem_insts_per_wave / kernel.mlp;

    inv.barrier_cycles =
        kernel.barriers * (params_.barrier_base_cycles +
                           params_.barrier_cycles_per_wave *
                               kernel.wavesPerWg(arch));
    return inv;
}

AnalyticModel::CuState
AnalyticModel::computeCuState(const KernelDesc &kernel,
                              const GpuConfig &cfg,
                              const Invariants &inv) const
{
    CuState cu;
    cu.occ = computeOccupancy(kernel, cfg);
    cu.cache = computeCacheBehavior(kernel, cfg, cu.occ);

    //
    // Workgroup quantization: each CU drains ceil(nwg/cus) workgroups
    // while an ideally divisible launch would drain nwg/cus.  This is
    // the multiplier on every CU-local throughput term, and it is what
    // makes small launches plateau (and saw-tooth) as CUs are added.
    //
    const double cus = static_cast<double>(cfg.num_cus);
    cu.imbalance = std::ceil(inv.wgs / cus) / (inv.wgs / cus);

    cu.l2_bytes = inv.useful_bytes * cu.cache.l2_traffic_per_byte;
    cu.dram_bytes = inv.useful_bytes * cu.cache.dram_traffic_per_byte;

    cu.l1_frac = cu.cache.l1_hit_rate;
    cu.l2_frac = (1.0 - cu.l1_frac) * cu.cache.l2_hit_rate;
    cu.dram_access_frac =
        (1.0 - cu.cache.l1_hit_rate) * (1.0 - cu.cache.l2_hit_rate);

    cu.concurrency =
        std::max<double>(1.0, static_cast<double>(cu.occ.active_waves));

    // Retry growth is the mechanism that turns CU scaling *negative*
    // for reduction-style kernels (applied only when the kernel issues
    // atomics at all).
    cu.retry_mult =
        1.0 + kernel.atomic_contention * params_.atomic_retry_scale *
                  static_cast<double>(cu.occ.active_waves) /
                  params_.atomic_reference_waves;

    cu.disp = computeDispatch(kernel, cfg, cu.occ);
    return cu;
}

KernelPerf
AnalyticModel::parallelPhase(const KernelDesc &kernel,
                             const GpuConfig &cfg,
                             const Invariants &inv,
                             const CuState &cu) const
{
    KernelPerf perf;
    perf.occupancy = cu.occ;
    perf.cache = cu.cache;
    perf.imbalance_factor = cu.imbalance;

    const double clk = cfg.coreClkHz();
    const double cus = static_cast<double>(cfg.num_cus);

    //
    // CU-local issue bounds.
    //
    const double simd_rate = cus * cfg.simds_per_cu * clk;
    perf.t_compute =
        inv.simd_cycles_total / simd_rate * perf.imbalance_factor;

    // LDS: lds_ops per work-item, lds_lanes_per_cycle serviced per CU.
    perf.t_lds = inv.lds_lane_ops /
                 (cus * cfg.lds_lanes_per_cycle * clk) *
                 perf.imbalance_factor;

    //
    // Memory traffic.
    //
    perf.t_l1 = inv.l1_bytes / cfg.peakL1Bw() * perf.imbalance_factor;

    const XbarState xbar = computeXbar(cfg);
    perf.t_l2 = cu.l2_bytes / xbar.effective_bw;

    const MemorySystem mem(cfg);
    perf.t_dram = cu.dram_bytes / mem.peakBandwidth();

    //
    // Atomics: a fixed global pipeline plus contention-driven retries
    // that grow with the number of concurrently active waves.
    //
    if (inv.total_atomics > 0) {
        perf.t_atomic = inv.total_atomics * cu.retry_mult /
                        (cfg.atomic_ops_per_cycle * clk);
    }

    //
    // Closed-system latency bound: with N concurrent wavefronts each
    // alternating compute segments and memory-dependency chains, the
    // asymptotic runtime is total_waves x wave_time / N using the
    // *unloaded* latency (bounds analysis for closed queueing
    // networks).  Saturation is not modelled by inflating latency —
    // the bandwidth terms already in the roofline max() cap the
    // throughput — which keeps the model monotone in both clocks.
    //
    const double avg_latency =
        cu.l1_frac * cfg.l1_latency_cycles / clk +
        cu.l2_frac * (cfg.l2_latency_cycles / clk + xbar.latency_s) +
        cu.dram_access_frac *
            (cfg.l2_latency_cycles / clk + mem.unloadedLatency());
    const double wave_time =
        inv.compute_cycles_per_wave / clk + inv.barrier_cycles / clk +
        inv.chains * avg_latency;
    perf.t_latency = inv.total_waves * wave_time / cu.concurrency;

    const double t_core =
        std::max({perf.t_compute, perf.t_lds, perf.t_l1, perf.t_l2,
                  perf.t_dram, perf.t_atomic, perf.t_latency});
    perf.kernel_time_s = t_core;

    // Delivered-bandwidth bookkeeping (reporting only).
    const double demand_bw = t_core > 0 ? cu.dram_bytes / t_core : 0.0;
    const DramState dram_state = mem.evaluate(demand_bw);
    perf.achieved_dram_bw = dram_state.achieved_bw;
    perf.dram_utilization = dram_state.utilization;

    const double max_term = t_core;
    perf.bound = BoundResource::Compute;
    struct { double t; BoundResource r; } terms[] = {
        { perf.t_compute, BoundResource::Compute },
        { perf.t_lds, BoundResource::Lds },
        { perf.t_l1, BoundResource::L1 },
        { perf.t_l2, BoundResource::L2 },
        { perf.t_dram, BoundResource::Dram },
        { perf.t_atomic, BoundResource::Atomics },
        { perf.t_latency, BoundResource::Latency },
    };
    for (const auto &term : terms) {
        if (term.t >= max_term) {
            perf.bound = term.r;
            break;
        }
    }

    return perf;
}

KernelPerf
AnalyticModel::estimatePoint(const KernelDesc &kernel,
                             const GpuConfig &cfg,
                             const Invariants &inv,
                             const CuState &cu,
                             const CuState &serial_cu) const
{
    KernelPerf perf = parallelPhase(kernel, cfg, inv, cu);

    //
    // Amdahl: a serial fraction of the work executes at single-CU
    // throughput regardless of the machine size.
    //
    double serial_time = 0.0;
    if (kernel.serial_fraction > 0.0) {
        GpuConfig one_cu = cfg;
        one_cu.num_cus = 1;
        const KernelPerf serial_perf =
            parallelPhase(kernel, one_cu, inv, serial_cu);
        serial_time = kernel.serial_fraction * serial_perf.kernel_time_s;
        perf.kernel_time_s =
            (1.0 - kernel.serial_fraction) * perf.kernel_time_s +
            serial_time;
    }

    perf.t_launch = cu.disp.launch_overhead_s;

    const double per_launch = perf.kernel_time_s + perf.t_launch;
    perf.time_s = static_cast<double>(kernel.launches) * per_launch;
    perf.t_serial =
        static_cast<double>(kernel.launches) * serial_time;

    if (perf.t_launch > perf.kernel_time_s)
        perf.bound = BoundResource::Launch;

    //
    // Delivered rates over the whole run.
    //
    const double total_flops =
        static_cast<double>(kernel.launches) *
        static_cast<double>(kernel.totalWorkItems()) *
        (kernel.valu_ops + 4.0 * kernel.sfu_ops);
    perf.achieved_gflops =
        perf.time_s > 0 ? total_flops / perf.time_s / 1e9 : 0.0;

    return perf;
}

KernelPerf
AnalyticModel::estimate(const KernelDesc &kernel,
                        const GpuConfig &cfg) const
{
    static obs::ShardedCounter &evaluations =
        obs::Registry::instance().shardedCounter(
            "model.analytic.estimates",
            "analytic-model evaluations");
    evaluations.inc();

    kernel.validate();
    cfg.validate();

    const Invariants inv = computeInvariants(kernel, cfg);
    const CuState cu = computeCuState(kernel, cfg, inv);
    CuState serial_cu;
    if (kernel.serial_fraction > 0.0) {
        GpuConfig one_cu = cfg;
        one_cu.num_cus = 1;
        serial_cu = computeCuState(kernel, one_cu, inv);
    }
    return estimatePoint(kernel, cfg, inv, cu, serial_cu);
}

std::vector<KernelPerf>
AnalyticModel::evaluateGrid(const KernelDesc &kernel,
                            const ConfigGrid &grid) const
{
    static obs::ShardedCounter &evaluations =
        obs::Registry::instance().shardedCounter(
            "model.analytic.estimates",
            "analytic-model evaluations");
    static obs::ShardedCounter &batches =
        obs::Registry::instance().shardedCounter(
            "model.analytic.grid.batches",
            "batched grid evaluations");
    evaluations.inc(grid.size());
    batches.inc();

    kernel.validate();
    grid.validate();

    // Any grid point supplies the fixed microarchitecture parameters.
    const GpuConfig arch = grid.at(0, 0, 0);
    const Invariants inv = computeInvariants(kernel, arch);

    // The Amdahl phase always runs on a one-CU machine, so its
    // clock-independent state is shared by the entire grid.
    CuState serial_cu;
    if (kernel.serial_fraction > 0.0) {
        GpuConfig one_cu = arch;
        one_cu.num_cus = 1;
        serial_cu = computeCuState(kernel, one_cu, inv);
    }

    std::vector<KernelPerf> out(grid.size());
    size_t flat = 0;
    for (size_t cu_i = 0; cu_i < grid.numCu(); ++cu_i) {
        // Occupancy, cache, quantization, dispatch: once per CU
        // setting, reused across all clock pairs.
        const CuState cu =
            computeCuState(kernel, grid.at(cu_i, 0, 0), inv);
        for (size_t core_i = 0; core_i < grid.numCoreClk(); ++core_i) {
            for (size_t mem_i = 0; mem_i < grid.numMemClk(); ++mem_i) {
                out[flat++] = estimatePoint(
                    kernel, grid.at(cu_i, core_i, mem_i), inv, cu,
                    serial_cu);
            }
        }
    }
    return out;
}

} // namespace gpu
} // namespace gpuscale
