/**
 * @file
 * Analytic model implementation.
 *
 * The evaluation is staged so the batched census walk can hoist work
 * out of the inner loops (see evaluateGrid() in the header):
 * Invariants captures everything derived from the kernel and the
 * fixed microarchitecture alone, CuState everything that additionally
 * depends on the compute-unit count, and the clock-domain arithmetic
 * lives in the shared inline helpers of analytic_batch.hh.  The
 * scalar estimate() path derives the same flat operands per point and
 * calls the same helpers, which is what keeps the batched and scalar
 * paths bitwise identical (docs/performance.md spells out the
 * contract).
 */

#include "analytic_model.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/string_util.hh"
#include "obs/metrics.hh"
#include "obs/sharded.hh"
#include "cache_model.hh"
#include "dispatch.hh"
#include "gpu_config.hh"
#include "interconnect.hh"
#include "kernel_desc.hh"
#include "memory_system.hh"
#include "occupancy.hh"

namespace gpuscale {
namespace gpu {

std::string
boundResourceName(BoundResource r)
{
    switch (r) {
      case BoundResource::Compute: return "compute";
      case BoundResource::Lds:     return "lds";
      case BoundResource::L1:      return "l1";
      case BoundResource::L2:      return "l2";
      case BoundResource::Dram:    return "dram";
      case BoundResource::Latency: return "latency";
      case BoundResource::Atomics: return "atomics";
      case BoundResource::Launch:  return "launch";
    }
    panic("unknown bound resource %d", static_cast<int>(r));
}

/**
 * Derived quantities that are constant across the whole grid: launch
 * geometry, instruction mix, and byte counts depend on the kernel and
 * the fixed microarchitecture only, never on the three swept knobs.
 */
struct AnalyticModel::Invariants {
    double total_waves = 0.0;
    double total_items = 0.0;
    double wgs = 0.0;
    double div_mult = 1.0;
    int issue_cycles_per_inst = 1;
    double compute_cycles_per_wave = 0.0;
    double simd_cycles_total = 0.0;
    double lds_lane_ops = 0.0;
    double useful_bytes = 0.0;
    double l1_bytes = 0.0;
    double total_atomics = 0.0;
    double chains = 0.0;
    double barrier_cycles = 0.0;
    double launches = 0.0;
    double total_flops = 0.0;
};

/**
 * Machine state that changes with the CU count but not with either
 * clock: occupancy, cache behaviour (the expensive exp() calls),
 * workgroup quantization, and dispatch.  On the paper grid this is
 * evaluated 11 times per kernel instead of 891.
 */
struct AnalyticModel::CuState {
    Occupancy occ;
    CacheBehavior cache;
    double imbalance = 1.0;
    double l2_bytes = 0.0;
    double dram_bytes = 0.0;
    double l1_frac = 0.0;
    double l2_frac = 0.0;
    double dram_access_frac = 0.0;
    double concurrency = 1.0;
    double retry_mult = 1.0;
    DispatchState disp;
};

AnalyticModel::AnalyticModel(AnalyticParams params)
    : params_(params)
{
}

// Tripwire: fingerprint() below hand-enumerates every AnalyticParams
// field, and a field it misses would let the sweep cache serve stale
// hits across models with different parameters — silent data
// corruption.  If this assert fires, you added (or resized) a param:
// fold it into fingerprint(), extend the drift test in
// tests/gpu/test_analytic_model.cc, and only then bump the count.
static_assert(sizeof(AnalyticParams) == 4 * sizeof(double),
              "AnalyticParams changed: update AnalyticModel::"
              "fingerprint() and its drift test first");

std::string
AnalyticModel::fingerprint() const
{
    return "analytic(" +
           formatDoubleShortest(params_.barrier_cycles_per_wave) + "," +
           formatDoubleShortest(params_.barrier_base_cycles) + "," +
           formatDoubleShortest(params_.atomic_retry_scale) + "," +
           formatDoubleShortest(params_.atomic_reference_waves) + ")";
}

AnalyticModel::Invariants
AnalyticModel::computeInvariants(const KernelDesc &kernel,
                                 const GpuConfig &arch) const
{
    Invariants inv;
    inv.total_waves = static_cast<double>(kernel.totalWaves(arch));
    inv.total_items = static_cast<double>(kernel.totalWorkItems());
    inv.wgs = static_cast<double>(kernel.num_workgroups);

    // Each wavefront instruction occupies a SIMD for
    // wavefront_size / lanes_per_simd cycles (4 on GCN); divergence
    // wastes issued cycles; transcendentals run at quarter rate.
    inv.div_mult = 1.0 / (1.0 - kernel.branch_divergence);
    inv.issue_cycles_per_inst = arch.wavefront_size / arch.lanes_per_simd;
    inv.compute_cycles_per_wave =
        (kernel.valu_ops + 4.0 * kernel.sfu_ops) *
        inv.issue_cycles_per_inst * inv.div_mult;
    inv.simd_cycles_total =
        inv.total_waves * inv.compute_cycles_per_wave;

    inv.lds_lane_ops = inv.total_items * kernel.lds_ops;

    inv.useful_bytes = kernel.totalBytesRequested();
    // Every access touches the L1 at line granularity.
    inv.l1_bytes = inv.useful_bytes / kernel.coalescing;

    inv.total_atomics = inv.total_items * kernel.atomic_ops;

    const double mem_insts_per_wave =
        kernel.mem_loads + kernel.mem_stores;
    inv.chains = mem_insts_per_wave / kernel.mlp;

    inv.barrier_cycles =
        kernel.barriers * (params_.barrier_base_cycles +
                           params_.barrier_cycles_per_wave *
                               kernel.wavesPerWg(arch));

    inv.launches = static_cast<double>(kernel.launches);
    inv.total_flops = inv.launches * inv.total_items *
                      (kernel.valu_ops + 4.0 * kernel.sfu_ops);
    return inv;
}

AnalyticModel::CuState
AnalyticModel::computeCuState(const KernelDesc &kernel,
                              const GpuConfig &cfg,
                              const Invariants &inv) const
{
    CuState cu;
    cu.occ = computeOccupancy(kernel, cfg);
    cu.cache = computeCacheBehavior(kernel, cfg, cu.occ);

    //
    // Workgroup quantization: each CU drains ceil(nwg/cus) workgroups
    // while an ideally divisible launch would drain nwg/cus.  This is
    // the multiplier on every CU-local throughput term, and it is what
    // makes small launches plateau (and saw-tooth) as CUs are added.
    //
    const double cus = static_cast<double>(cfg.num_cus);
    cu.imbalance = std::ceil(inv.wgs / cus) / (inv.wgs / cus);

    cu.l2_bytes = inv.useful_bytes * cu.cache.l2_traffic_per_byte;
    cu.dram_bytes = inv.useful_bytes * cu.cache.dram_traffic_per_byte;

    cu.l1_frac = cu.cache.l1_hit_rate;
    cu.l2_frac = (1.0 - cu.l1_frac) * cu.cache.l2_hit_rate;
    cu.dram_access_frac =
        (1.0 - cu.cache.l1_hit_rate) * (1.0 - cu.cache.l2_hit_rate);

    cu.concurrency =
        std::max<double>(1.0, static_cast<double>(cu.occ.active_waves));

    // Retry growth is the mechanism that turns CU scaling *negative*
    // for reduction-style kernels (applied only when the kernel issues
    // atomics at all).
    cu.retry_mult =
        1.0 + kernel.atomic_contention * params_.atomic_retry_scale *
                  static_cast<double>(cu.occ.active_waves) /
                  params_.atomic_reference_waves;

    cu.disp = computeDispatch(kernel, cfg, cu.occ);
    return cu;
}

batch::KernelTerms
AnalyticModel::kernelTerms(const Invariants &inv) const
{
    batch::KernelTerms kt;
    kt.simd_cycles_total = inv.simd_cycles_total;
    kt.lds_lane_ops = inv.lds_lane_ops;
    kt.l1_bytes = inv.l1_bytes;
    kt.chains = inv.chains;
    kt.total_waves = inv.total_waves;
    kt.has_atomics = inv.total_atomics > 0;
    return kt;
}

batch::CuTerms
AnalyticModel::makeCuTerms(const Invariants &inv, const CuState &cu,
                           const CuUnits &units,
                           const GpuConfig &arch) const
{
    batch::CuTerms t;
    t.imbalance = cu.imbalance;
    t.simd_units = units.simd_units;
    t.lds_units = units.lds_units;
    t.l1_units = units.l1_units;
    t.xbar_units = units.xbar_units;
    t.l2_bytes = cu.l2_bytes;
    t.dram_bytes = cu.dram_bytes;
    // Atomics: a fixed global pipeline plus contention-driven retries
    // that grow with the number of concurrently active waves.
    t.atomic_num = inv.total_atomics * cu.retry_mult;
    t.l1_lat_num = cu.l1_frac * arch.l1_latency_cycles;
    t.l2_frac = cu.l2_frac;
    t.dram_frac = cu.dram_access_frac;
    t.concurrency = cu.concurrency;
    return t;
}

namespace {

/**
 * Fill every KernelPerf field of one point from the flat operands:
 * the roofline terms, bound selection, the Amdahl fold, per-launch
 * host overhead, and the delivered-rate bookkeeping.  Shared by the
 * scalar estimatePoint() and the batched row reconstitution, so the
 * two fill rows identically by construction.
 *
 * `serial_core_s` is the one-CU machine's kernel time (its roofline
 * max), ignored when serial_fraction is zero.
 */
void
assemblePoint(KernelPerf &perf, const batch::CoreTerms &ct,
              double t_dram, double dram_bytes, const MemorySystem &mem,
              double serial_fraction, double serial_core_s,
              double launches, double launch_overhead_s,
              double total_flops)
{
    perf.t_compute = ct.t_compute;
    perf.t_lds = ct.t_lds;
    perf.t_l1 = ct.t_l1;
    perf.t_l2 = ct.t_l2;
    perf.t_dram = t_dram;
    perf.t_atomic = ct.t_atomic;
    perf.t_latency = ct.t_latency;

    const double t_core = std::max(ct.base_max, t_dram);
    perf.kernel_time_s = t_core;

    // Delivered-bandwidth bookkeeping (reporting only).
    const double demand_bw = t_core > 0 ? dram_bytes / t_core : 0.0;
    const DramState dram_state = mem.evaluate(demand_bw);
    perf.achieved_dram_bw = dram_state.achieved_bw;
    perf.dram_utilization = dram_state.utilization;

    perf.bound = BoundResource::Compute;
    struct { double t; BoundResource r; } terms[] = {
        { perf.t_compute, BoundResource::Compute },
        { perf.t_lds, BoundResource::Lds },
        { perf.t_l1, BoundResource::L1 },
        { perf.t_l2, BoundResource::L2 },
        { perf.t_dram, BoundResource::Dram },
        { perf.t_atomic, BoundResource::Atomics },
        { perf.t_latency, BoundResource::Latency },
    };
    for (const auto &term : terms) {
        if (term.t >= t_core) {
            perf.bound = term.r;
            break;
        }
    }

    //
    // Amdahl: a serial fraction of the work executes at single-CU
    // throughput regardless of the machine size.
    //
    double serial_time = 0.0;
    if (serial_fraction > 0.0) {
        serial_time = serial_fraction * serial_core_s;
        perf.kernel_time_s =
            (1.0 - serial_fraction) * perf.kernel_time_s + serial_time;
    }

    perf.t_launch = launch_overhead_s;

    const double per_launch = perf.kernel_time_s + perf.t_launch;
    perf.time_s = launches * per_launch;
    perf.t_serial = launches * serial_time;

    if (perf.t_launch > perf.kernel_time_s)
        perf.bound = BoundResource::Launch;

    // Delivered rates over the whole run.
    perf.achieved_gflops =
        perf.time_s > 0 ? total_flops / perf.time_s / 1e9 : 0.0;
}

} // namespace

KernelPerf
AnalyticModel::estimatePoint(const KernelDesc &kernel,
                             const GpuConfig &cfg,
                             const Invariants &inv,
                             const CuState &cu,
                             const CuState &serial_cu) const
{
    KernelPerf perf;
    perf.occupancy = cu.occ;
    perf.cache = cu.cache;
    perf.imbalance_factor = cu.imbalance;

    // Derive per point the same flat operands the batched plan hoists
    // (computeCuUnits / computeClockTerms / makeCuTerms), then run
    // the shared clock-domain helper — the bitwise contract between
    // the scalar and batched paths in one place.
    const batch::KernelTerms kt = kernelTerms(inv);
    const ClockTerms clock = computeClockTerms(cfg);
    const batch::CuTerms terms =
        makeCuTerms(inv, cu, computeCuUnits(cfg.num_cus, cfg), cfg);
    const double core_time_s =
        inv.compute_cycles_per_wave / clock.clk_hz +
        inv.barrier_cycles / clock.clk_hz;
    const batch::CoreTerms ct = batch::computeCoreTerms(
        kt, terms, clock.clk_hz, core_time_s, clock.l2_hop_s,
        clock.dram_hop_s, clock.atomic_rate);

    const MemorySystem mem(cfg);
    const double t_dram = terms.dram_bytes / mem.peakBandwidth();

    double serial_core_s = 0.0;
    if (kernel.serial_fraction > 0.0) {
        const batch::CuTerms s_terms =
            makeCuTerms(inv, serial_cu, computeCuUnits(1, cfg), cfg);
        const batch::CoreTerms s_ct = batch::computeCoreTerms(
            kt, s_terms, clock.clk_hz, core_time_s, clock.l2_hop_s,
            clock.dram_hop_s, clock.atomic_rate);
        const double s_dram = s_terms.dram_bytes / mem.peakBandwidth();
        serial_core_s = std::max(s_ct.base_max, s_dram);
    }

    assemblePoint(perf, ct, t_dram, terms.dram_bytes, mem,
                  kernel.serial_fraction, serial_core_s, inv.launches,
                  cu.disp.launch_overhead_s, inv.total_flops);
    return perf;
}

KernelPerf
AnalyticModel::estimate(const KernelDesc &kernel,
                        const GpuConfig &cfg) const
{
    static obs::ShardedCounter &evaluations =
        obs::Registry::instance().shardedCounter(
            "model.analytic.estimates",
            "analytic-model evaluations");
    evaluations.inc();

    kernel.validate();
    cfg.validate();

    const Invariants inv = computeInvariants(kernel, cfg);
    const CuState cu = computeCuState(kernel, cfg, inv);
    CuState serial_cu;
    if (kernel.serial_fraction > 0.0) {
        GpuConfig one_cu = cfg;
        one_cu.num_cus = 1;
        serial_cu = computeCuState(kernel, one_cu, inv);
    }
    return estimatePoint(kernel, cfg, inv, cu, serial_cu);
}

batch::BatchPlan
AnalyticModel::buildPlan(const KernelDesc &kernel,
                         const ConfigGrid &grid, const Invariants &inv,
                         std::vector<CuState> *states) const
{
    batch::BatchPlan plan;
    plan.kernel = kernelTerms(inv);
    plan.has_serial = kernel.serial_fraction > 0.0;
    plan.serial_fraction = kernel.serial_fraction;
    plan.parallel_fraction = 1.0 - kernel.serial_fraction;
    plan.launches = inv.launches;
    plan.total_flops = inv.total_flops;

    const GridPlanes planes = grid.planes();
    plan.core_clk_hz = planes.core_clk_hz;
    plan.atomic_rate = planes.atomic_rate;
    plan.l2_hop_s = planes.l2_hop_s;
    plan.dram_hop_s = planes.dram_hop_s;
    plan.dram_bw = planes.dram_bw;
    plan.core_time_s.reserve(planes.core_clk_hz.size());
    for (const double clk : planes.core_clk_hz) {
        plan.core_time_s.push_back(inv.compute_cycles_per_wave / clk +
                                   inv.barrier_cycles / clk);
    }

    // Any grid point supplies the fixed microarchitecture parameters.
    const GpuConfig arch = grid.at(0, 0, 0);
    plan.cu.reserve(grid.numCu());
    if (states)
        states->reserve(grid.numCu());
    for (size_t cu_i = 0; cu_i < grid.numCu(); ++cu_i) {
        // Occupancy, cache, quantization, dispatch: once per CU
        // setting, reused across all clock pairs.
        const CuState cu =
            computeCuState(kernel, grid.at(cu_i, 0, 0), inv);
        plan.cu.push_back(makeCuTerms(inv, cu, planes.cu[cu_i], arch));
        if (cu_i == 0)
            plan.launch_overhead_s = cu.disp.launch_overhead_s;
        if (states)
            states->push_back(cu);
    }

    // The Amdahl phase always runs on a one-CU machine, so its
    // clock-independent state is shared by the entire grid.
    if (plan.has_serial) {
        GpuConfig one_cu = arch;
        one_cu.num_cus = 1;
        const CuState serial_cu = computeCuState(kernel, one_cu, inv);
        plan.serial_cu =
            makeCuTerms(inv, serial_cu, computeCuUnits(1, arch), arch);
    }
    return plan;
}

batch::BatchPlan
AnalyticModel::prepareBatch(const KernelDesc &kernel,
                            const ConfigGrid &grid) const
{
    kernel.validate();
    grid.validate();
    const Invariants inv = computeInvariants(kernel, grid.at(0, 0, 0));
    return buildPlan(kernel, grid, inv, nullptr);
}

std::vector<double>
AnalyticModel::evaluateGridRuntimes(const KernelDesc &kernel,
                                    const ConfigGrid &grid) const
{
    static obs::ShardedCounter &evaluations =
        obs::Registry::instance().shardedCounter(
            "model.analytic.estimates",
            "analytic-model evaluations");
    static obs::ShardedCounter &batches =
        obs::Registry::instance().shardedCounter(
            "model.analytic.grid.batches",
            "batched grid evaluations");
    evaluations.inc(grid.size());
    batches.inc();

    const batch::BatchPlan plan = prepareBatch(kernel, grid);
    std::vector<double> out(grid.size());
    batch::runBatch(plan, out.data());
    return out;
}

std::vector<KernelPerf>
AnalyticModel::evaluateGrid(const KernelDesc &kernel,
                            const ConfigGrid &grid) const
{
    static obs::ShardedCounter &evaluations =
        obs::Registry::instance().shardedCounter(
            "model.analytic.estimates",
            "analytic-model evaluations");
    static obs::ShardedCounter &batches =
        obs::Registry::instance().shardedCounter(
            "model.analytic.grid.batches",
            "batched grid evaluations");
    evaluations.inc(grid.size());
    batches.inc();

    kernel.validate();
    grid.validate();
    const Invariants inv = computeInvariants(kernel, grid.at(0, 0, 0));

    // Reconstitute full KernelPerf rows from the same flat plan the
    // runtimes path feeds to batch::runBatch(): the roofline terms
    // hoist to the (CU, core clock) level, the per-point work is the
    // memory-clock arithmetic plus assemblePoint(), and the
    // occupancy/cache snapshots come from the retained CuStates.
    std::vector<CuState> states;
    const batch::BatchPlan plan = buildPlan(kernel, grid, inv, &states);

    // The DRAM model depends only on the memory clock: one instance
    // per axis value, shared by every row.
    std::vector<MemorySystem> mem_systems;
    mem_systems.reserve(grid.numMemClk());
    for (size_t mem_i = 0; mem_i < grid.numMemClk(); ++mem_i)
        mem_systems.emplace_back(grid.at(0, 0, mem_i));

    const size_t n_core = grid.numCoreClk();
    const size_t n_mem = grid.numMemClk();

    // The serial machine's core-domain max is CU-invariant.
    std::vector<double> serial_base(plan.has_serial ? n_core : 0);
    for (size_t c = 0; c < serial_base.size(); ++c) {
        serial_base[c] =
            batch::computeCoreTerms(plan.kernel, plan.serial_cu,
                                    plan.core_clk_hz[c],
                                    plan.core_time_s[c],
                                    plan.l2_hop_s[c],
                                    plan.dram_hop_s[c],
                                    plan.atomic_rate[c])
                .base_max;
    }

    std::vector<KernelPerf> out(grid.size());
    size_t flat = 0;
    for (size_t cu_i = 0; cu_i < grid.numCu(); ++cu_i) {
        const CuState &cu = states[cu_i];
        const batch::CuTerms &terms = plan.cu[cu_i];
        for (size_t c = 0; c < n_core; ++c) {
            const batch::CoreTerms ct = batch::computeCoreTerms(
                plan.kernel, terms, plan.core_clk_hz[c],
                plan.core_time_s[c], plan.l2_hop_s[c],
                plan.dram_hop_s[c], plan.atomic_rate[c]);
            for (size_t m = 0; m < n_mem; ++m) {
                KernelPerf &perf = out[flat++];
                perf.occupancy = cu.occ;
                perf.cache = cu.cache;
                perf.imbalance_factor = cu.imbalance;
                const double t_dram =
                    terms.dram_bytes / plan.dram_bw[m];
                double serial_core_s = 0.0;
                if (plan.has_serial) {
                    serial_core_s = std::max(
                        serial_base[c],
                        plan.serial_cu.dram_bytes / plan.dram_bw[m]);
                }
                assemblePoint(perf, ct, t_dram, terms.dram_bytes,
                              mem_systems[m], plan.serial_fraction,
                              serial_core_s, plan.launches,
                              plan.launch_overhead_s,
                              plan.total_flops);
            }
        }
    }
    return out;
}

} // namespace gpu
} // namespace gpuscale
