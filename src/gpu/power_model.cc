/**
 * @file
 * Power model implementation.
 */

#include "power_model.hh"

#include <algorithm>

#include "base/logging.hh"
#include "gpu_config.hh"

namespace gpuscale {
namespace gpu {

PowerModel::PowerModel(PowerParams params)
    : params_(params)
{
    fatal_if(params_.f_max_mhz <= params_.f_min_mhz,
             "power model: inverted DVFS frequency range");
    fatal_if(params_.v_max < params_.v_min,
             "power model: inverted voltage range");
    fatal_if(params_.idle_activity < 0 || params_.idle_activity > 1,
             "power model: idle activity %f outside [0, 1]",
             params_.idle_activity);
}

double
PowerModel::voltage(double f_mhz) const
{
    const double t = std::clamp(
        (f_mhz - params_.f_min_mhz) /
            (params_.f_max_mhz - params_.f_min_mhz),
        0.0, 1.0);
    return params_.v_min + t * (params_.v_max - params_.v_min);
}

PowerResult
PowerModel::evaluate(const GpuConfig &cfg, const KernelPerf &perf) const
{
    PowerResult out;

    const double v = voltage(cfg.core_clk_mhz);
    const double f_ghz = cfg.core_clk_mhz / 1000.0;

    // Compute activity: how busy the SIMDs are relative to the
    // runtime.  A launch-bound or memory-bound kernel leaves the
    // array near idle.
    double activity = params_.idle_activity;
    if (perf.kernel_time_s > 0) {
        activity = std::clamp(
            perf.t_compute / perf.kernel_time_s, params_.idle_activity,
            1.0);
    }

    out.core_dynamic_w = params_.dyn_watts_per_cu * cfg.num_cus *
                         f_ghz * v * v * activity;
    out.core_static_w =
        params_.static_watts_per_cu * cfg.num_cus * v;
    out.memory_w =
        params_.mem_watts_per_ghz * cfg.mem_clk_mhz / 1000.0 +
        params_.mem_active_watts * perf.dram_utilization;
    out.base_w = params_.base_watts;

    out.total_w = out.core_dynamic_w + out.core_static_w +
                  out.memory_w + out.base_w;
    out.energy_j = out.total_w * perf.time_s;
    out.edp = out.energy_j * perf.time_s;
    out.perf_per_watt =
        perf.time_s > 0 ? 1.0 / (perf.time_s * out.total_w) : 0.0;
    return out;
}

} // namespace gpu
} // namespace gpuscale
