/**
 * @file
 * Workgroup dispatch model: batching (tail) effects and launch
 * overhead.
 *
 * A launch executes in ceil(num_wgs / machine_capacity) residency
 * batches; a launch whose workgroup count is not a multiple of the
 * machine capacity leaves CUs idle during the final batch.  On large
 * CU counts with small launches this quantization is the dominant
 * reason benchmark suites "do not scale to modern GPU sizes".
 */

#ifndef GPUSCALE_GPU_DISPATCH_HH
#define GPUSCALE_GPU_DISPATCH_HH

#include <cstdint>

namespace gpuscale {
namespace gpu {

struct GpuConfig;
struct KernelDesc;
struct Occupancy;

/** Resolved dispatch behaviour for one launch. */
struct DispatchState {
    /** Residency batches needed to drain the launch. */
    int64_t batches = 1;

    /**
     * Runtime multiplier >= 1 due to batch quantization: the ratio of
     * whole batches to the fractional batches the work would ideally
     * occupy.
     */
    double tail_factor = 1.0;

    /** Fraction of CU x batch slots doing useful work, in (0, 1]. */
    double machine_fill = 1.0;

    /** Host + runtime overhead per launch in seconds. */
    double launch_overhead_s = 0.0;
};

/** Evaluate dispatch behaviour for (kernel, cfg, occupancy). */
DispatchState computeDispatch(const KernelDesc &kernel,
                              const GpuConfig &cfg,
                              const Occupancy &occ);

} // namespace gpu
} // namespace gpuscale

#endif // GPUSCALE_GPU_DISPATCH_HH
