/**
 * @file
 * Performance-result types shared by every timing model.
 */

#ifndef GPUSCALE_GPU_PERF_RESULT_HH
#define GPUSCALE_GPU_PERF_RESULT_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cache_model.hh"
#include "occupancy.hh"

namespace gpuscale {
namespace gpu {

/** The resource that bounds a kernel's runtime on a configuration. */
enum class BoundResource {
    Compute,    ///< SIMD issue bandwidth
    Lds,        ///< local-data-share bandwidth
    L1,         ///< L1 port bandwidth
    L2,         ///< L2/crossbar bandwidth (core-clock domain)
    Dram,       ///< DRAM bandwidth (memory-clock domain)
    Latency,    ///< exposed memory latency (insufficient concurrency)
    Atomics,    ///< serialized atomic traffic
    Launch,     ///< host-side launch overhead
};

/** Human-readable resource name. */
std::string boundResourceName(BoundResource r);

/**
 * The outcome of estimating one kernel on one configuration.
 *
 * Component times are *per launch*; time_s covers the whole program
 * run (all launches, including host overhead and the serial fraction).
 */
struct KernelPerf {
    /** End-to-end time for the program run, seconds. */
    double time_s = 0.0;

    /** Device time for a single launch, seconds. */
    double kernel_time_s = 0.0;

    //
    // Roofline component times for one launch (seconds).
    //
    double t_compute = 0.0;
    double t_lds = 0.0;
    double t_l1 = 0.0;
    double t_l2 = 0.0;
    double t_dram = 0.0;
    double t_latency = 0.0;
    double t_atomic = 0.0;

    /** Host overhead per launch, seconds. */
    double t_launch = 0.0;

    /** Amdahl serial time folded into the run, seconds (whole run). */
    double t_serial = 0.0;

    /** The binding resource for the launch. */
    BoundResource bound = BoundResource::Compute;

    /** Occupancy snapshot. */
    Occupancy occupancy;

    /** Cache-behaviour snapshot. */
    CacheBehavior cache;

    /** Delivered DRAM bandwidth, bytes/s. */
    double achieved_dram_bw = 0.0;

    /** DRAM utilization in [0, 1). */
    double dram_utilization = 0.0;

    /** Delivered arithmetic rate, GFLOP/s. */
    double achieved_gflops = 0.0;

    /** Workgroup-quantization multiplier applied to CU-local terms. */
    double imbalance_factor = 1.0;

    /** Performance in launches of useful work per second. */
    double throughput() const { return time_s > 0 ? 1.0 / time_s : 0.0; }
};

/**
 * Serialize one shard result (a runtime per grid point) to a single
 * locale-independent line: "<count>:<v0>,<v1>,...".  Round-trips
 * bitwise through parseRuntimes(), which is what lets the disk sweep
 * cache and the census checkpoint journal replay results without
 * drifting from a fresh compute.
 */
std::string serializeRuntimes(const std::vector<double> &runtimes);

/** Parse serializeRuntimes() output; nullopt on any malformation. */
std::optional<std::vector<double>> parseRuntimes(
    std::string_view text);

} // namespace gpu
} // namespace gpuscale

#endif // GPUSCALE_GPU_PERF_RESULT_HH
