/**
 * @file
 * GPU power and energy model.
 *
 * The scaling study's sponsors cared about performance *per watt*:
 * the same three knobs trade performance against power, and the
 * taxonomy says which trades pay off for which kernels (a
 * memory-bound kernel wastes the power of extra CUs and core
 * megahertz; a launch-bound kernel wastes everything).  This module
 * extends the reproduction toward that use.
 *
 * Model (standard CMOS scaling):
 *  - core dynamic power:  C_cu x num_cus x f_core x V(f_core)^2,
 *    scaled by the kernel's compute activity;
 *  - core static power:   leakage per CU x num_cus x V(f_core);
 *  - memory power:        interface + DRAM activity, linear in the
 *    memory clock and in achieved bandwidth utilization;
 *  - base board power:    constant.
 *
 * V(f) is a linear voltage/frequency curve between (f_min, v_min) and
 * (f_max, v_max), matching how real parts ship DVFS tables.
 */

#ifndef GPUSCALE_GPU_POWER_MODEL_HH
#define GPUSCALE_GPU_POWER_MODEL_HH

#include "perf_result.hh"

namespace gpuscale {
namespace gpu {

struct GpuConfig;
struct KernelDesc;

/** Voltage/frequency curve and component coefficients. */
struct PowerParams {
    /** Frequency endpoints of the DVFS range, MHz. */
    double f_min_mhz = 200.0;
    double f_max_mhz = 1000.0;

    /** Core voltage at the endpoints, volts. */
    double v_min = 0.80;
    double v_max = 1.20;

    /**
     * Dynamic switching coefficient per CU: watts at 1 GHz and 1 V
     * with full activity.
     */
    double dyn_watts_per_cu = 2.4;

    /** Leakage per CU at 1 V, watts. */
    double static_watts_per_cu = 0.9;

    /** Memory interface watts per GHz of memory clock. */
    double mem_watts_per_ghz = 24.0;

    /** Extra DRAM activity watts at full bandwidth utilization. */
    double mem_active_watts = 18.0;

    /** Constant board power (fans, VRM loss, display), watts. */
    double base_watts = 12.0;

    /** Floor on modelled compute activity in [0, 1]. */
    double idle_activity = 0.10;
};

/** Power/energy estimate for one kernel run on one configuration. */
struct PowerResult {
    double core_dynamic_w = 0.0;
    double core_static_w = 0.0;
    double memory_w = 0.0;
    double base_w = 0.0;

    /** Sum of the components. */
    double total_w = 0.0;

    /** total_w x runtime. */
    double energy_j = 0.0;

    /** Energy-delay product, J*s. */
    double edp = 0.0;

    /** Work rate per watt: 1 / (time_s x total_w). */
    double perf_per_watt = 0.0;
};

/** The power model. */
class PowerModel
{
  public:
    PowerModel() = default;
    explicit PowerModel(PowerParams params);

    /**
     * Estimate power for a run whose timing is already known.
     *
     * @param cfg the configuration the run used.
     * @param perf the timing result from a PerfModel.
     */
    PowerResult evaluate(const GpuConfig &cfg,
                         const KernelPerf &perf) const;

    /** Core voltage at a frequency (linear DVFS curve, clamped). */
    double voltage(double f_mhz) const;

    const PowerParams &params() const { return params_; }

  private:
    PowerParams params_;
};

} // namespace gpu
} // namespace gpuscale

#endif // GPUSCALE_GPU_POWER_MODEL_HH
