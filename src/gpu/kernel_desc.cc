/**
 * @file
 * KernelDesc implementation.
 */

#include "kernel_desc.hh"

#include <cmath>
#include <limits>

#include "base/logging.hh"
#include "gpu_config.hh"

namespace gpuscale {
namespace gpu {

int
KernelDesc::wavesPerWg(const GpuConfig &cfg) const
{
    return static_cast<int>(
        (work_items_per_wg + cfg.wavefront_size - 1) / cfg.wavefront_size);
}

int64_t
KernelDesc::totalWaves(const GpuConfig &cfg) const
{
    return num_workgroups * wavesPerWg(cfg);
}

int64_t
KernelDesc::totalWorkItems() const
{
    return num_workgroups * work_items_per_wg;
}

double
KernelDesc::totalMemInsts() const
{
    return static_cast<double>(totalWorkItems()) * (mem_loads + mem_stores);
}

double
KernelDesc::totalBytesRequested() const
{
    return totalMemInsts() * bytes_per_access;
}

void
KernelDesc::validate() const
{
    fatal_if(name.empty(), "kernel has no name");
    const char *n = name.c_str();
    fatal_if(num_workgroups < 1, "%s: no workgroups", n);
    fatal_if(work_items_per_wg < 1 || work_items_per_wg > 1024,
             "%s: work-items per workgroup %d outside [1, 1024]",
             n, work_items_per_wg);
    fatal_if(launches < 1, "%s: no launches", n);
    fatal_if(valu_ops < 0 || salu_ops_per_wave < 0 || sfu_ops < 0,
             "%s: negative instruction counts", n);
    fatal_if(mem_loads < 0 || mem_stores < 0, "%s: negative memory mix", n);
    fatal_if(bytes_per_access <= 0 || bytes_per_access > 64,
             "%s: bytes per access %f outside (0, 64]", n,
             bytes_per_access);
    fatal_if(coalescing <= 0.0 || coalescing > 1.0,
             "%s: coalescing %f outside (0, 1]", n, coalescing);
    fatal_if(lds_ops < 0 || lds_bytes_per_wg < 0, "%s: negative LDS", n);
    fatal_if(vgprs < 1 || vgprs > 256,
             "%s: vgprs %d outside [1, 256]", n, vgprs);
    fatal_if(branch_divergence < 0 || branch_divergence >= 1.0,
             "%s: divergence %f outside [0, 1)", n, branch_divergence);
    fatal_if(barriers < 0, "%s: negative barriers", n);
    fatal_if(l1_reuse < 0 || l1_reuse > 1 || l2_reuse < 0 || l2_reuse > 1,
             "%s: reuse fractions outside [0, 1]", n);
    fatal_if(footprint_bytes_per_wg < 0 || shared_footprint_bytes < 0,
             "%s: negative footprints", n);
    fatal_if(mlp < 1.0, "%s: MLP %f below 1", n, mlp);
    fatal_if(serial_fraction < 0 || serial_fraction > 1,
             "%s: serial fraction %f outside [0, 1]", n, serial_fraction);
    fatal_if(atomic_ops < 0, "%s: negative atomics", n);
    fatal_if(atomic_contention < 0 || atomic_contention > 1,
             "%s: atomic contention %f outside [0, 1]", n,
             atomic_contention);
    fatal_if(host_overhead_us < 0, "%s: negative host overhead", n);
}

std::string
KernelDesc::describe() const
{
    return strprintf(
        "%s: %lld wg x %d wi x %lld launches, %.0f valu/wi, "
        "%.1f mem/wi @ %.0fB (coal %.2f), AI %.2f flop/B",
        name.c_str(), static_cast<long long>(num_workgroups),
        work_items_per_wg, static_cast<long long>(launches), valu_ops,
        mem_loads + mem_stores, bytes_per_access, coalescing,
        arithmeticIntensity(*this));
}

double
arithmeticIntensity(const KernelDesc &desc)
{
    const double flops = desc.valu_ops + 4.0 * desc.sfu_ops;
    const double line_bytes = 64.0;
    const double bytes =
        (desc.mem_loads + desc.mem_stores) * desc.bytes_per_access /
        desc.coalescing;
    if (bytes <= 0)
        return std::numeric_limits<double>::infinity();
    (void)line_bytes;
    return flops / bytes;
}

} // namespace gpu
} // namespace gpuscale
