/**
 * @file
 * Predict-request batching: coalesce concurrent point predictions
 * into one batched grid evaluation.
 *
 * A lone "predict runtime at (cu, core, mem)" call costs one
 * PerfModel::evaluateGridRuntimes() on a 1x1x1 grid; N concurrent
 * calls for the same kernel cost N such calls.  The batcher instead
 * parks callers on a condition variable, and a single worker thread
 * drains the whole queue per round: requests are grouped by kernel,
 * each group's distinct axis values form one small ConfigGrid, and
 * one batched evaluation answers every caller in the group.  Because
 * the model is per-point pure (test_grid_differential proves bitwise
 * identity across grid shapes), a coalesced answer is bitwise
 * identical to the answer a private evaluation would have produced —
 * batching is invisible to clients except in latency.
 *
 * Deadlines: a caller whose deadline passes while still queued removes
 * itself and reports DeadlineExceeded; once its round is being
 * evaluated it waits for the (bounded) evaluation to finish.  stop()
 * fails queued callers with ShuttingDown and joins the worker.
 */

#ifndef GPUSCALE_SERVICE_BATCHER_HH
#define GPUSCALE_SERVICE_BATCHER_HH

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "gpu/perf_model.hh"
#include "service/protocol.hh"

namespace gpuscale {
namespace service {

/** One point prediction ask. */
struct PredictRequest {
    const gpu::KernelDesc *kernel = nullptr;
    int num_cus = 0;
    double core_clk_mhz = 0.0;
    double mem_clk_mhz = 0.0;
    std::chrono::steady_clock::time_point deadline;
};

/** What the caller gets back. */
struct PredictOutcome {
    bool ok = false;
    double runtime_s = 0.0;
    /** Meaningful only when !ok. */
    ErrorCode code = ErrorCode::Internal;
    std::string message;
};

class PredictBatcher
{
  public:
    /**
     * @param model evaluated per round; must outlive the batcher.
     * @param base fixed microarchitecture parameters every predicted
     *        point inherits (the census grid's base).
     */
    PredictBatcher(const gpu::PerfModel &model,
                   const gpu::GpuConfig &base);
    ~PredictBatcher();

    PredictBatcher(const PredictBatcher &) = delete;
    PredictBatcher &operator=(const PredictBatcher &) = delete;

    /**
     * Block until the request is answered by a batch round, its
     * deadline passes while queued, or the batcher stops.  Callers
     * must pre-validate the request (non-null kernel, num_cus >= 1,
     * positive clocks) — the batcher evaluates what it is given.
     */
    PredictOutcome predict(const PredictRequest &request);

    /** Fail queued callers with ShuttingDown and join the worker. */
    void stop();

  private:
    struct Job;

    void workerLoop();
    void runBatch(std::deque<Job *> &batch);

    const gpu::PerfModel &model_;
    const gpu::GpuConfig base_;

    // gpuscale-lint: allow(concurrency): the batcher is a
    // rendezvous — callers park while a worker evaluates — and the
    // harness pool deliberately stays free for the evaluation itself.
    std::mutex mutex_;
    // gpuscale-lint: allow(concurrency): wakes the worker when
    // requests arrive or stop() is called.
    std::condition_variable work_cv_;
    // gpuscale-lint: allow(concurrency): wakes parked callers when
    // their round completes.
    std::condition_variable done_cv_;
    // gpuscale-lint: allow(concurrency): the single batch worker.
    std::thread worker_;

    std::deque<Job *> queue_; // guarded_by(mutex_)
    bool stopping_ = false;   // guarded_by(mutex_)
};

} // namespace service
} // namespace gpuscale

#endif // GPUSCALE_SERVICE_BATCHER_HH
