/**
 * @file
 * Bounded admission control with per-client quotas.
 *
 * The service never queues unbounded work: each request must acquire
 * an admission slot before any model evaluation happens, and admit()
 * never blocks — when the global in-flight bound or the caller's
 * per-client quota is full, the verdict is an immediate shed that the
 * connection turns into a typed RETRY_AFTER frame.  Shedding instead
 * of queueing is the whole point: under saturation a client sees a
 * fast, well-formed "come back in N ms", never a hang
 * (docs/service.md).
 *
 * The `service.admit` fault site lets GPUSCALE_FAULTS plans force
 * sheds at a configured rate, so the saturation tests can drive the
 * overload path deterministically on an otherwise idle machine.
 */

#ifndef GPUSCALE_SERVICE_ADMISSION_HH
#define GPUSCALE_SERVICE_ADMISSION_HH

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

namespace gpuscale {
namespace service {

/** What admit() decided. */
struct AdmissionVerdict {
    bool admitted = false;
    /** Suggested client backoff when shed. */
    double retry_after_ms = 0.0;
};

class AdmissionControl
{
  public:
    /**
     * @param max_inflight global bound on admitted-but-unreleased
     *        requests.
     * @param client_quota per-client share of that bound.
     */
    AdmissionControl(size_t max_inflight, size_t client_quota);

    /**
     * Try to admit one request for `client`.  Never blocks; a full
     * bound, an exhausted quota, or a fired `service.admit` fault
     * sheds immediately.  An admitted request must be release()d
     * exactly once.
     */
    AdmissionVerdict admit(const std::string &client);

    /** Return an admitted request's slot. */
    void release(const std::string &client);

    /** Admitted-but-unreleased requests right now. */
    size_t inflight() const;

  private:
    const size_t max_inflight_;
    const size_t client_quota_;

    // gpuscale-lint: allow(concurrency): admission is its own tiny
    // critical section taken once per request on connection threads;
    // the harness pool sits below the service layer and cannot
    // arbitrate sockets.
    mutable std::mutex mutex_;
    size_t inflight_ = 0;            // guarded_by(mutex_)
    std::map<std::string, size_t> per_client_; // guarded_by(mutex_)
};

} // namespace service
} // namespace gpuscale

#endif // GPUSCALE_SERVICE_ADMISSION_HH
