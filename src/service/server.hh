/**
 * @file
 * gpuscaled core: a resident census/prediction service over a Unix
 * socket.
 *
 * The service loads the kernel zoo and the configuration grid once
 * (journaled through the checkpoint log, so a killed daemon resumes
 * bitwise-identically), then answers newline-delimited JSON requests
 * (protocol.hh): `classify`, `predict`, `census`, `health`, `stats`.
 *
 * Robustness model (docs/service.md):
 *  - every request runs under a deadline; long work (census refresh,
 *    batched predictions) is cancelled cooperatively through
 *    harness::CancelToken when the deadline passes;
 *  - admission control (admission.hh) bounds in-flight work and sheds
 *    overload with typed RETRY_AFTER frames — the service never
 *    queues unboundedly and never hangs a client;
 *  - concurrent predict calls coalesce into batched grid evaluations
 *    (batcher.hh);
 *  - SIGTERM/SIGINT triggers a graceful drain: stop accepting,
 *    nudge idle connections, let in-flight requests finish or
 *    deadline out, stop the batcher, sync the journal, remove the
 *    socket and pidfile.
 *
 * Fault probes cover the client-visible failure matrix: GPUSCALE_FAULTS
 * plans can fire on `service.start`, `service.accept`,
 * `service.conn.read`, `service.conn.write`, `service.admit`, and
 * `service.journal.sync`.
 */

#ifndef GPUSCALE_SERVICE_SERVER_HH
#define GPUSCALE_SERVICE_SERVER_HH

#include <atomic>
#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "gpu/perf_model.hh"
#include "harness/cancel.hh"
#include "harness/checkpoint.hh"
#include "harness/experiment.hh"
#include "service/admission.hh"
#include "service/batcher.hh"
#include "service/protocol.hh"

namespace gpuscale {
namespace service {

/** Daemon configuration. */
struct ServiceOptions {
    std::string socket_path = "gpuscaled.sock";
    /** Empty disables the pidfile (and its staleness check). */
    std::string pidfile;
    /** Empty disables the checkpoint journal. */
    std::string checkpoint_dir;
    /** Use the coarse 3x3x3 test grid instead of the paper grid. */
    bool test_grid = false;
    /** Global admission bound on in-flight requests. */
    size_t max_inflight = 64;
    /** Per-client share of the admission bound. */
    size_t client_quota = 16;
    /** Deadline for requests that do not carry one. */
    double default_deadline_ms = 5000.0;
    /** Budget for drain-time I/O (final journal sync). */
    double drain_deadline_ms = 2000.0;
};

class Service
{
  public:
    /** The model must outlive the service. */
    Service(const ServiceOptions &opts, const gpu::PerfModel &model);
    ~Service();

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    /**
     * Claim the pidfile and bind the listening socket.  A live
     * pidfile (its pid still runs) or an unbindable/live socket path
     * fails with a warn(); the daemon maps that to exit 5.  A stale
     * pidfile or dead socket file is removed and claimed.
     */
    bool start();

    /**
     * Run the (journaled) census that warms the service.  Returns
     * false when a drain cancelled it mid-flight — the journal stays
     * resumable either way, exactly like a killed run.
     */
    bool loadCensus();

    /**
     * Block SIGTERM/SIGINT and watch for them on a background
     * thread; either triggers requestDrain().  Call before serve(),
     * from the main thread, before other threads inherit the mask.
     */
    void installSignalDrain();

    /**
     * Accept and serve connections until a drain request, then run
     * the drain to completion (see file comment) and return.
     */
    void serve();

    /** Start a graceful drain; idempotent, safe from any thread. */
    void requestDrain();

    /** True once a drain has been requested. */
    bool draining() const
    {
        return draining_.load(std::memory_order_acquire);
    }

    /** Census-journal records replayed when the journal opened. */
    size_t journalReplayed() const { return journal_replayed_; }

    const ServiceOptions &options() const { return opts_; }

  private:
    struct Connection;

    void connectionLoop(Connection *conn);
    std::string processLine(const std::string &line,
                            const std::string &default_client);
    bool writeFrame(int fd, const std::string &frame,
                    std::chrono::steady_clock::time_point deadline);
    void reapConnections(bool join_all);
    void stopSignalWatcher();
    void syncJournal();

    std::string handleHealth(const Request &req);
    std::string handleStats(const Request &req);
    std::string handleClassify(const Request &req);
    std::string handlePredict(
        const Request &req,
        std::chrono::steady_clock::time_point deadline);
    std::string handleCensus(
        const Request &req,
        std::chrono::steady_clock::time_point deadline);

    const ServiceOptions opts_;
    const gpu::PerfModel &model_;
    scaling::ConfigSpace space_;

    std::optional<harness::CensusJournal> journal_;
    size_t journal_replayed_ = 0;

    AdmissionControl admission_;
    std::optional<PredictBatcher> batcher_;

    int listen_fd_ = -1;
    int drain_pipe_[2] = {-1, -1};
    bool pidfile_claimed_ = false;

    std::atomic<bool> draining_{false};
    /** Cancelled on drain; loadCensus() sweeps under it. */
    harness::CancelToken drain_token_;

    // gpuscale-lint: allow(concurrency): guards the census result the
    // classify/census handlers read while a refresh swaps it.
    std::mutex census_mutex_;
    /** Classification rows only; surfaces stay in the batcher path. */
    std::vector<scaling::KernelClassification>
        census_;                             // guarded_by(census_mutex_)
    bool census_loaded_ = false;             // guarded_by(census_mutex_)
    std::map<std::string, size_t> class_index_; // guarded_by(census_mutex_)

    // gpuscale-lint: allow(concurrency): guards the single-flight
    // census-refresh slot and its cancel token, which requestDrain()
    // fires from another thread.
    std::mutex refresh_mutex_;
    bool refresh_active_ = false;             // guarded_by(refresh_mutex_)
    harness::CancelToken *refresh_token_ = nullptr; // guarded_by(refresh_mutex_)

    // gpuscale-lint: allow(concurrency): tracks one thread per live
    // connection; the harness pool stays free for the model work the
    // connections dispatch.
    std::mutex conn_mutex_;
    std::list<std::unique_ptr<Connection>> conns_; // guarded_by(conn_mutex_)
    std::atomic<uint64_t> next_conn_id_{0};

    // gpuscale-lint: allow(concurrency): the sigtimedwait watcher
    // installSignalDrain() starts.
    std::thread signal_watcher_;
    std::atomic<bool> watcher_stop_{false};
};

} // namespace service
} // namespace gpuscale

#endif // GPUSCALE_SERVICE_SERVER_HH
