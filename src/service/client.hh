/**
 * @file
 * Minimal blocking client for the gpuscaled socket protocol.
 *
 * One request line in, one response line out, with a wall-clock
 * timeout on every step — a client of a robust service must itself
 * never hang.  Used by `gpuscaled call`, the integration tests, and
 * the bench load generator; transport failures (refused connection,
 * EOF, timeout) are reported as a false return, distinct from typed
 * protocol errors which arrive as well-formed frames.
 */

#ifndef GPUSCALE_SERVICE_CLIENT_HH
#define GPUSCALE_SERVICE_CLIENT_HH

#include <string>

namespace gpuscale {
namespace service {

class Client
{
  public:
    explicit Client(std::string socket_path);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Connect, retrying (the daemon may still be binding) until the
     * timeout elapses.
     */
    // gpuscale-lint: allow(fault-coverage): declaration only; the
    // definition carries the client.connect fault probe.
    bool connect(double timeout_ms = 1000.0);

    bool connected() const { return fd_ >= 0; }

    void close();

    /**
     * Send one request line (newline appended if missing) and wait
     * for one response line.  On success *response holds the frame
     * without its trailing newline.  Returns false on transport
     * failure — disconnected, send/recv error, EOF before a full
     * frame, or timeout.
     */
    bool call(const std::string &request_line, double timeout_ms,
              std::string *response);

  private:
    std::string path_;
    int fd_ = -1;
    std::string rxbuf_;
};

} // namespace service
} // namespace gpuscale

#endif // GPUSCALE_SERVICE_CLIENT_HH
