/**
 * @file
 * gpuscaled wire protocol: newline-delimited JSON frames.
 *
 * One request per line, one response per line, always in order.  A
 * request is `{"id":N,"op":"...","params":{...},"deadline_ms":N}`;
 * the response echoes the id with either `"ok":true,"result":{...}`
 * or `"ok":false,"error":{"code":...,"message":...}`.  Connection-
 * level failures (unparseable line, shed before a request id is
 * known) use id 0.  Every error carries one of the typed codes below
 * so clients can branch without string-matching messages; RETRY_AFTER
 * additionally carries `retry_after_ms`.  See docs/service.md for the
 * full contract and example frames.
 *
 * Rendering goes through obs::JsonWriter, so doubles are emitted
 * locale-independently in shortest round-trip form — the bitwise
 * resume test compares census numbers across the socket and relies on
 * this.
 */

#ifndef GPUSCALE_SERVICE_PROTOCOL_HH
#define GPUSCALE_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <functional>
#include <string>

#include "obs/json.hh"

namespace gpuscale {
namespace service {

/** Typed error codes; the wire form is the upper-snake name. */
enum class ErrorCode {
    BadRequest,       ///< malformed frame or invalid params
    NotFound,         ///< unknown kernel or op
    RetryAfter,       ///< shed by admission control; retry later
    DeadlineExceeded, ///< request deadline passed before completion
    ShuttingDown,     ///< service is draining; no new work
    Internal,         ///< unexpected failure (absorbed fault, bug)
};

/** Wire name of a code, e.g. "RETRY_AFTER". */
const char *errorCodeName(ErrorCode code);

/** One parsed request frame. */
struct Request {
    uint64_t id = 0;
    std::string op;
    /** Optional per-request client identity for quota accounting. */
    std::string client;
    /** 0 means "use the service default deadline". */
    double deadline_ms = 0.0;
    /** The raw "params" object; Null when absent. */
    obs::JsonValue params;
};

/**
 * Parse one request line.  Returns false (filling *error with a
 * human-readable reason) on malformed JSON, a non-object frame, a
 * missing/empty "op", or a negative "deadline_ms"; the caller answers
 * with BAD_REQUEST.
 */
bool parseRequest(const std::string &line, Request *request,
                  std::string *error);

/**
 * Render a success frame: `{"id":N,"ok":true,"result":<fill>}` plus
 * the trailing newline.  `fill` writes exactly one JSON value (object,
 * array, or scalar) into the supplied writer.
 */
std::string renderResult(
    uint64_t id, const std::function<void(obs::JsonWriter &)> &fill);

/**
 * Render a success frame whose result is a pre-rendered JSON document
 * (e.g. Registry::snapshotJson()), spliced in verbatim.
 */
std::string renderRawResult(uint64_t id, const std::string &raw_json);

/**
 * Render an error frame.  `retry_after_ms` > 0 adds the
 * "retry_after_ms" member (meaningful for RETRY_AFTER).
 */
std::string renderError(uint64_t id, ErrorCode code,
                        const std::string &message,
                        double retry_after_ms = 0.0);

} // namespace service
} // namespace gpuscale

#endif // GPUSCALE_SERVICE_PROTOCOL_HH
