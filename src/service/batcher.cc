/**
 * @file
 * Predict-batcher implementation.
 */

#include "batcher.hh"

#include <algorithm>
#include <map>
#include <vector>

#include "gpu/config_grid.hh"
#include "gpu/kernel_desc.hh"
#include "obs/metrics.hh"

namespace gpuscale {
namespace service {

namespace {

/** Cached instrument references for the batching path. */
struct BatcherMetrics {
    obs::Counter &batches;
    obs::Counter &coalesced;
    obs::Histogram &batch_size;

    static BatcherMetrics &
    get()
    {
        static BatcherMetrics m{
            obs::Registry::instance().counter(
                "service.predict.batches",
                "batched grid evaluations run by the predict "
                "coalescer"),
            obs::Registry::instance().counter(
                "service.predict.coalesced",
                "predict requests answered from a shared batch "
                "round"),
            obs::Registry::instance().histogram(
                "service.predict.batch.size",
                "predict requests answered per batch round"),
        };
        return m;
    }
};

/** Index of `v` in a sorted unique vector (present by construction). */
template <typename T>
size_t
axisIndex(const std::vector<T> &axis, T v)
{
    return static_cast<size_t>(
        std::lower_bound(axis.begin(), axis.end(), v) - axis.begin());
}

} // namespace

/** One parked caller; lives on the caller's stack. */
struct PredictBatcher::Job {
    enum class State { Queued, Running, Done };
    PredictRequest req;
    PredictOutcome out;
    State state = State::Queued;
};

PredictBatcher::PredictBatcher(const gpu::PerfModel &model,
                               const gpu::GpuConfig &base)
    : model_(model), base_(base)
{
    // gpuscale-lint: allow(concurrency): spawns the batch worker.
    worker_ = std::thread([this]() { workerLoop(); });
}

PredictBatcher::~PredictBatcher()
{
    stop();
}

PredictOutcome
PredictBatcher::predict(const PredictRequest &request)
{
    Job job;
    job.req = request;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (stopping_) {
            return PredictOutcome{false, 0.0, ErrorCode::ShuttingDown,
                                  "service is draining"};
        }
        queue_.push_back(&job);
        work_cv_.notify_one();

        while (true) {
            if (job.state == Job::State::Done)
                return job.out;
            if (job.state == Job::State::Queued) {
                if (std::chrono::steady_clock::now() >=
                    job.req.deadline) {
                    // Still waiting for a round: withdraw.  Once the
                    // worker owns the job (Running) it is too late to
                    // leave — the evaluation is bounded, so waiting
                    // it out is both safe and required (the worker
                    // writes into our stack frame).
                    queue_.erase(std::find(queue_.begin(),
                                           queue_.end(), &job));
                    return PredictOutcome{
                        false, 0.0, ErrorCode::DeadlineExceeded,
                        "deadline passed before a batch round"};
                }
                done_cv_.wait_until(lock, job.req.deadline);
            } else {
                done_cv_.wait(lock);
            }
        }
    }
}

void
PredictBatcher::runBatch(std::deque<Job *> &batch)
{
    BatcherMetrics &metrics = BatcherMetrics::get();

    // Group by kernel; each group becomes one grid evaluation over
    // the cross product of its distinct axis values.  Evaluating a
    // superset of the asked points is fine: points are pure and the
    // grids here are tiny (a handful of distinct values per axis).
    std::map<const gpu::KernelDesc *, std::vector<Job *>> groups;
    for (Job *job : batch)
        groups[job->req.kernel].push_back(job);

    for (auto &[kernel, jobs] : groups) {
        gpu::ConfigGrid grid;
        grid.base = base_;
        for (const Job *job : jobs) {
            grid.cu_values.push_back(job->req.num_cus);
            grid.core_clks_mhz.push_back(job->req.core_clk_mhz);
            grid.mem_clks_mhz.push_back(job->req.mem_clk_mhz);
        }
        auto uniq = [](auto &axis) {
            std::sort(axis.begin(), axis.end());
            axis.erase(std::unique(axis.begin(), axis.end()),
                       axis.end());
        };
        uniq(grid.cu_values);
        uniq(grid.core_clks_mhz);
        uniq(grid.mem_clks_mhz);

        try {
            const std::vector<double> runtimes =
                model_.evaluateGridRuntimes(*kernel, grid);
            for (Job *job : jobs) {
                const size_t flat = grid.flatten(
                    axisIndex(grid.cu_values, job->req.num_cus),
                    axisIndex(grid.core_clks_mhz,
                              job->req.core_clk_mhz),
                    axisIndex(grid.mem_clks_mhz,
                              job->req.mem_clk_mhz));
                job->out =
                    PredictOutcome{true, runtimes[flat],
                                   ErrorCode::Internal, std::string()};
            }
        } catch (const std::exception &e) {
            for (Job *job : jobs) {
                job->out = PredictOutcome{
                    false, 0.0, ErrorCode::Internal,
                    std::string("batched evaluation failed: ") +
                        e.what()};
            }
        }
    }

    metrics.batches.inc(groups.size());
    metrics.coalesced.inc(batch.size());
    metrics.batch_size.record(static_cast<double>(batch.size()));
}

void
PredictBatcher::workerLoop()
{
    while (true) {
        std::deque<Job *> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [this]() {
                return stopping_ || !queue_.empty();
            });
            if (stopping_) {
                // Fail whatever is still parked; new callers are
                // rejected at predict() entry.
                for (Job *job : queue_) {
                    job->out = PredictOutcome{false, 0.0,
                                              ErrorCode::ShuttingDown,
                                              "service is draining"};
                    job->state = Job::State::Done;
                }
                queue_.clear();
                done_cv_.notify_all();
                return;
            }
            batch.swap(queue_);
            for (Job *job : batch)
                job->state = Job::State::Running;
        }

        // Evaluate outside the lock so new requests can queue for the
        // next round (and withdraw on deadline) meanwhile.
        runBatch(batch);

        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (Job *job : batch)
                job->state = Job::State::Done;
        }
        done_cv_.notify_all();
    }
}

void
PredictBatcher::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    // Second call (stop() then the destructor) finds the thread
    // already joined and does nothing.
    if (worker_.joinable())
        worker_.join();
}

} // namespace service
} // namespace gpuscale
