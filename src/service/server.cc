/**
 * @file
 * Service implementation.
 */

#include "server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "base/fault.hh"
#include "base/logging.hh"
#include "base/string_util.hh"
#include "obs/metrics.hh"
#include "obs/retry.hh"
#include "scaling/taxonomy.hh"
#include "workloads/registry.hh"

namespace gpuscale {
namespace service {

namespace {

using steady_clock = std::chrono::steady_clock;

/** Cached instrument references for the serving path. */
struct ServiceMetrics {
    obs::Counter &connections;
    obs::Counter &requests;
    obs::Counter &responses;
    obs::Counter &errors;
    obs::Counter &read_faults;
    obs::Counter &accept_faults;
    obs::Gauge &draining;
    obs::Histogram &latency;

    static ServiceMetrics &
    get()
    {
        static ServiceMetrics m{
            obs::Registry::instance().counter(
                "service.connections", "client connections accepted"),
            obs::Registry::instance().counter(
                "service.requests", "request frames parsed"),
            obs::Registry::instance().counter(
                "service.responses",
                "response frames written (success or typed error)"),
            obs::Registry::instance().counter(
                "service.errors", "responses carrying a typed error"),
            obs::Registry::instance().counter(
                "service.read.faults",
                "recv rounds absorbed by an injected read fault"),
            obs::Registry::instance().counter(
                "service.accept.faults",
                "accept rounds absorbed by an injected fault"),
            obs::Registry::instance().gauge(
                "service.draining", "1 once a drain was requested"),
            obs::Registry::instance().histogram(
                "service.request.latency",
                "seconds from request parse to response frame"),
        };
        return m;
    }
};

steady_clock::time_point
deadlineFromMs(steady_clock::time_point from, double ms)
{
    return from + std::chrono::microseconds(
                      static_cast<long long>(ms * 1000.0));
}

/** Fire a fault probe, folding both flavors into one bool. */
bool
probeFired(const char *site)
{
    try {
        return faultPoint(site);
    } catch (const FaultInjectedError &) {
        return true;
    }
}

/** Read an integer pid from a pidfile; 0 when absent/garbled. */
long
readPidfile(const std::string &path)
{
    // gpuscale-lint: allow(fault-coverage): pure reader — a missing
    // or unreadable pidfile is indistinguishable from a stale one and
    // start() handles both; there is no failure mode left to inject.
    std::ifstream in(path);
    long pid = 0;
    if (!(in >> pid) || pid <= 0)
        return 0;
    return pid;
}

} // namespace

/** One live client connection and the thread serving it. */
struct Service::Connection {
    int fd = -1;
    uint64_t id = 0;
    std::atomic<bool> done{false};
    // gpuscale-lint: allow(concurrency): one serving thread per
    // connection; requests on one connection are handled in order,
    // so responses can never interleave mid-frame.
    std::thread thread;
};

Service::Service(const ServiceOptions &opts,
                 const gpu::PerfModel &model)
    : opts_(opts), model_(model),
      space_(opts.test_grid ? scaling::ConfigSpace::testGrid()
                            : scaling::ConfigSpace::paperGrid()),
      admission_(opts.max_inflight, opts.client_quota)
{
    // Spawn the batch worker with SIGTERM/SIGINT blocked so a
    // process-directed signal can never be delivered to it (default
    // disposition would kill the process under installSignalDrain's
    // nose).  The caller's own mask is restored: an in-process
    // embedder that never installs the drain keeps its signals.
    sigset_t drained, old;
    sigemptyset(&drained);
    sigaddset(&drained, SIGTERM);
    sigaddset(&drained, SIGINT);
    pthread_sigmask(SIG_BLOCK, &drained, &old);
    batcher_.emplace(model_, space_.grid().base);
    pthread_sigmask(SIG_SETMASK, &old, nullptr);
}

Service::~Service()
{
    requestDrain();
    stopSignalWatcher();
    reapConnections(/*join_all=*/true);
    if (batcher_)
        batcher_->stop();
    for (int fd : {listen_fd_, drain_pipe_[0], drain_pipe_[1]}) {
        if (fd >= 0)
            ::close(fd);
    }
}

bool
Service::start()
{
    // Injection site: a fired fault models an unusable socket path or
    // pidfile race; the daemon maps a false return to exit 5.  (The
    // direct faultPoint call also marks this whole function as
    // fault-covered for every raw socket/pidfile operation below.)
    try {
        if (faultPoint("service.start")) {
            warn("gpuscaled: injected fault at service.start");
            return false;
        }
    } catch (const FaultInjectedError &) {
        warn("gpuscaled: injected fault at service.start");
        return false;
    }

    if (!opts_.pidfile.empty()) {
        const long pid = readPidfile(opts_.pidfile);
        if (pid > 0 &&
            (::kill(static_cast<pid_t>(pid), 0) == 0 ||
             errno == EPERM)) {
            warn("gpuscaled: pidfile %s names live pid %ld; refusing "
                 "to start",
                 opts_.pidfile.c_str(), pid);
            return false;
        }
        if (pid > 0) {
            warn("gpuscaled: removing stale pidfile %s (pid %ld is "
                 "gone)",
                 opts_.pidfile.c_str(), pid);
            std::remove(opts_.pidfile.c_str());
        }
    }

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
        warn("gpuscaled: socket path %s exceeds the AF_UNIX limit",
             opts_.socket_path.c_str());
        return false;
    }
    std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);

    // A leftover socket file from a crashed daemon would make bind()
    // fail; probe it first — a live listener answers the connect and
    // must not be clobbered.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
        if (::connect(probe,
                      reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            ::close(probe);
            warn("gpuscaled: %s already has a live listener",
                 opts_.socket_path.c_str());
            return false;
        }
        ::close(probe);
        ::unlink(opts_.socket_path.c_str());
    }

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        warn("gpuscaled: socket(): %s", std::strerror(errno));
        return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        warn("gpuscaled: bind(%s): %s", opts_.socket_path.c_str(),
             std::strerror(errno));
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    if (::listen(listen_fd_, 64) != 0) {
        warn("gpuscaled: listen(%s): %s", opts_.socket_path.c_str(),
             std::strerror(errno));
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }

    if (::pipe(drain_pipe_) != 0) {
        warn("gpuscaled: pipe(): %s", std::strerror(errno));
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }

    if (!opts_.pidfile.empty()) {
        std::ofstream out(opts_.pidfile, std::ios::trunc);
        out << ::getpid() << '\n';
        if (!out) {
            warn("gpuscaled: cannot write pidfile %s",
                 opts_.pidfile.c_str());
            ::close(listen_fd_);
            listen_fd_ = -1;
            return false;
        }
        pidfile_claimed_ = true;
    }

    inform("gpuscaled: listening on %s (%zu kernels x %zu configs)",
            opts_.socket_path.c_str(),
            workloads::WorkloadRegistry::instance().allKernels().size(),
            space_.size());
    return true;
}

bool
Service::loadCensus()
{
    if (!opts_.checkpoint_dir.empty()) {
        journal_.emplace(opts_.checkpoint_dir, model_.fingerprint(),
                         space_.grid().fingerprint());
        journal_replayed_ = journal_->loadedRecords();
        if (journal_replayed_ > 0) {
            inform("gpuscaled: resuming census — %zu kernels "
                    "replayed from %s",
                    journal_replayed_, journal_->path().c_str());
        }
    }

    std::optional<harness::CensusResult> fresh;
    try {
        fresh.emplace(harness::runCensus(
            model_, space_, scaling::TaxonomyParams{}, nullptr,
            journal_ ? &*journal_ : nullptr, &drain_token_));
    } catch (const harness::CancelledError &) {
        inform("gpuscaled: census load cancelled by drain; journal "
                "stays resumable");
        return false;
    }
    syncJournal();

    std::lock_guard<std::mutex> lock(census_mutex_);
    census_ = std::move(fresh->classifications);
    census_loaded_ = true;
    class_index_.clear();
    for (size_t i = 0; i < census_.size(); ++i)
        class_index_[census_[i].kernel] = i;
    return true;
}

void
Service::syncJournal()
{
    if (!journal_ || !journal_->active())
        return;
    // The quiescent-point sync rides the deadline-capped retry so a
    // slow or faulted disk cannot stall a drain past its budget.
    obs::retryWithBackoff(
        obs::retryPolicy(), "service.journal.sync",
        deadlineFromMs(steady_clock::now(), opts_.drain_deadline_ms),
        [&]() {
            if (probeFired("service.journal.sync"))
                return false;
            journal_->sync();
            return true;
        });
}

void
Service::installSignalDrain()
{
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGTERM);
    sigaddset(&set, SIGINT);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
    // gpuscale-lint: allow(concurrency): spawns the signal watcher;
    // sigtimedwait must run somewhere, and the harness pool's workers
    // inherit the blocked mask but serve parallel regions.
    signal_watcher_ = std::thread([this, set]() {
        while (!watcher_stop_.load(std::memory_order_acquire)) {
            timespec tick{};
            tick.tv_nsec = 200 * 1000 * 1000;
            const int sig = sigtimedwait(&set, nullptr, &tick);
            if (sig == SIGTERM || sig == SIGINT) {
                inform("gpuscaled: signal %d; draining", sig);
                requestDrain();
                return;
            }
        }
    });
}

void
Service::stopSignalWatcher()
{
    watcher_stop_.store(true, std::memory_order_release);
    if (signal_watcher_.joinable())
        signal_watcher_.join();
}

void
Service::requestDrain()
{
    bool expected = false;
    if (!draining_.compare_exchange_strong(expected, true))
        return;
    ServiceMetrics::get().draining.set(1.0);
    drain_token_.cancel();
    {
        std::lock_guard<std::mutex> lock(refresh_mutex_);
        if (refresh_token_ != nullptr)
            refresh_token_->cancel();
    }
    if (drain_pipe_[1] >= 0) {
        const char byte = 'd';
        // gpuscale-lint: allow(fault-coverage): the drain nudge must
        // stay fault-free — injecting here would wedge the drain the
        // probe exists to test; a lost byte only delays the poll tick.
        (void)!::write(drain_pipe_[1], &byte, 1);
    }
}

void
Service::reapConnections(bool join_all)
{
    std::list<std::unique_ptr<Connection>> joinable;
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        for (auto it = conns_.begin(); it != conns_.end();) {
            if (join_all ||
                (*it)->done.load(std::memory_order_acquire)) {
                joinable.push_back(std::move(*it));
                it = conns_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (auto &conn : joinable) {
        if (conn->thread.joinable())
            conn->thread.join();
    }
}

void
Service::serve()
{
    ServiceMetrics &metrics = ServiceMetrics::get();
    while (!draining()) {
        pollfd fds[2];
        fds[0] = {listen_fd_, POLLIN, 0};
        fds[1] = {drain_pipe_[0], POLLIN, 0};
        const int ready = ::poll(fds, 2, 100);
        reapConnections(/*join_all=*/false);
        if (ready <= 0)
            continue;
        if ((fds[1].revents & POLLIN) != 0 || draining())
            break;
        if ((fds[0].revents & POLLIN) == 0)
            continue;

        // Injection site: a fired fault models a transient accept()
        // failure.  The connection is not lost — it stays in the
        // listen backlog and the next round picks it up.
        bool accept_fault = false;
        try {
            accept_fault = faultPoint("service.accept");
        } catch (const FaultInjectedError &) {
            accept_fault = true;
        }
        if (accept_fault) {
            metrics.accept_faults.inc();
            continue;
        }
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        metrics.connections.inc();

        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        conn->id =
            next_conn_id_.fetch_add(1, std::memory_order_relaxed);
        Connection *raw = conn.get();
        {
            std::lock_guard<std::mutex> lock(conn_mutex_);
            conns_.push_back(std::move(conn));
        }
        // gpuscale-lint: allow(concurrency): spawns the per-connection
        // serving thread tracked in conns_.
        raw->thread = std::thread([this, raw]() {
            connectionLoop(raw);
        });
    }

    //
    // Drain: Running -> Draining -> Stopped (docs/service.md).
    //
    inform("gpuscaled: drain started");
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    ::unlink(opts_.socket_path.c_str());

    // Nudge idle connections: a half-close makes their blocked recv
    // return 0 so the serving threads fall out of their read loops;
    // an in-flight request still finishes (or deadlines out) first.
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        for (const auto &conn : conns_) {
            if (!conn->done.load(std::memory_order_acquire))
                ::shutdown(conn->fd, SHUT_RD);
        }
    }
    reapConnections(/*join_all=*/true);
    if (batcher_)
        batcher_->stop();
    syncJournal();
    if (pidfile_claimed_)
        std::remove(opts_.pidfile.c_str());
    stopSignalWatcher();
    inform("gpuscaled: drain complete (%zu in-flight)",
            admission_.inflight());
}

void
Service::connectionLoop(Connection *conn)
{
    const std::string default_client =
        "conn-" + std::to_string(conn->id);
    std::string buf;
    char chunk[4096];
    uint64_t consecutive_read_faults = 0;

    while (true) {
        const size_t nl = buf.find('\n');
        if (nl == std::string::npos) {
            // Injection site: a fired fault models one failed recv;
            // the round is retried like EINTR.  A wall of
            // consecutive fires (a rate-1.0 plan) still terminates
            // the connection instead of spinning.
            bool read_fault = false;
            try {
                read_fault = faultPoint("service.conn.read");
            } catch (const FaultInjectedError &) {
                read_fault = true;
            }
            if (read_fault) {
                ServiceMetrics::get().read_faults.inc();
                if (++consecutive_read_faults > 1000)
                    break;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                continue;
            }
            consecutive_read_faults = 0;
            const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
            if (n == 0)
                break;
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            buf.append(chunk, static_cast<size_t>(n));
            continue;
        }

        std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        if (line.empty())
            continue;

        const std::string frame = processLine(line, default_client);
        const auto write_deadline = deadlineFromMs(
            steady_clock::now(), opts_.default_deadline_ms);
        if (!writeFrame(conn->fd, frame, write_deadline))
            break;
    }

    ::close(conn->fd);
    conn->done.store(true, std::memory_order_release);
}

std::string
Service::processLine(const std::string &line,
                     const std::string &default_client)
{
    ServiceMetrics &metrics = ServiceMetrics::get();
    Request req;
    std::string parse_error;
    if (!parseRequest(line, &req, &parse_error)) {
        metrics.errors.inc();
        return renderError(0, ErrorCode::BadRequest, parse_error);
    }

    metrics.requests.inc();
    const auto t0 = steady_clock::now();
    const double deadline_ms = req.deadline_ms > 0.0
                                   ? req.deadline_ms
                                   : opts_.default_deadline_ms;
    const auto deadline = deadlineFromMs(t0, deadline_ms);

    std::string frame;
    if (req.op == "health") {
        frame = handleHealth(req);
    } else if (req.op == "stats") {
        frame = handleStats(req);
    } else if (draining()) {
        frame = renderError(req.id, ErrorCode::ShuttingDown,
                            "service is draining");
    } else {
        const std::string client =
            req.client.empty() ? default_client : req.client;
        const AdmissionVerdict verdict = admission_.admit(client);
        if (!verdict.admitted) {
            frame = renderError(req.id, ErrorCode::RetryAfter,
                                "overloaded; retry later",
                                verdict.retry_after_ms);
        } else {
            try {
                if (req.op == "classify")
                    frame = handleClassify(req);
                else if (req.op == "predict")
                    frame = handlePredict(req, deadline);
                else if (req.op == "census")
                    frame = handleCensus(req, deadline);
                else
                    frame = renderError(req.id, ErrorCode::NotFound,
                                        "unknown op \"" + req.op +
                                            "\"");
            } catch (const harness::CancelledError &) {
                frame = renderError(
                    req.id,
                    draining() ? ErrorCode::ShuttingDown
                               : ErrorCode::DeadlineExceeded,
                    "request cancelled mid-evaluation");
            } catch (const std::exception &e) {
                frame = renderError(req.id, ErrorCode::Internal,
                                    e.what());
            }
            admission_.release(client);
        }
    }

    metrics.responses.inc();
    if (frame.find("\"ok\":false") != std::string::npos)
        metrics.errors.inc();
    metrics.latency.record(
        std::chrono::duration<double>(steady_clock::now() - t0)
            .count());
    return frame;
}

bool
Service::writeFrame(int fd, const std::string &frame,
                    steady_clock::time_point deadline)
{
    // The injected-fault probe fires *before* any byte of the frame
    // is sent, so a retry re-attempts a whole frame — clients can see
    // a delayed response but never a torn one.  A real mid-frame
    // send() failure means the peer is gone, which is not retryable.
    return obs::retryWithBackoff(
        obs::retryPolicy(), "service.conn.write", deadline, [&]() {
            if (probeFired("service.conn.write"))
                return false;
            size_t off = 0;
            while (off < frame.size()) {
                const ssize_t n =
                    ::send(fd, frame.data() + off, frame.size() - off,
                           MSG_NOSIGNAL);
                if (n < 0) {
                    if (errno == EINTR)
                        continue;
                    return false;
                }
                off += static_cast<size_t>(n);
            }
            return true;
        });
}

std::string
Service::handleHealth(const Request &req)
{
    bool loaded;
    size_t kernels;
    {
        std::lock_guard<std::mutex> lock(census_mutex_);
        loaded = census_loaded_;
        kernels = census_.size();
    }
    return renderResult(req.id, [&](obs::JsonWriter &w) {
        w.beginObject();
        w.key("status").value(draining() ? "draining" : "ok");
        w.key("draining").value(draining());
        w.key("census_loaded").value(loaded);
        w.key("kernels").value(static_cast<uint64_t>(kernels));
        w.key("configs").value(static_cast<uint64_t>(space_.size()));
        w.key("journal_replayed")
            .value(static_cast<uint64_t>(journal_replayed_));
        w.key("inflight")
            .value(static_cast<uint64_t>(admission_.inflight()));
        w.endObject();
    });
}

std::string
Service::handleStats(const Request &req)
{
    return renderRawResult(req.id,
                           obs::Registry::instance().snapshotJson());
}

std::string
Service::handleClassify(const Request &req)
{
    const auto *kernel = req.params.find("kernel");
    if (kernel == nullptr || !kernel->isString())
        return renderError(req.id, ErrorCode::BadRequest,
                           "classify needs params.kernel (string)");

    std::lock_guard<std::mutex> lock(census_mutex_);
    if (!census_loaded_)
        return renderError(req.id, ErrorCode::RetryAfter,
                           "census still loading", 250.0);
    const auto it = class_index_.find(kernel->str);
    if (it == class_index_.end())
        return renderError(req.id, ErrorCode::NotFound,
                           "unknown kernel \"" + kernel->str + "\"");
    const scaling::KernelClassification &c = census_[it->second];

    const auto verdict = [](obs::JsonWriter &w,
                            const scaling::ShapeVerdict &v) {
        w.beginObject();
        w.key("shape").value(scaling::shapeName(v.shape));
        w.key("total_gain").value(v.total_gain);
        w.key("efficiency").value(v.efficiency);
        w.endObject();
    };
    return renderResult(req.id, [&](obs::JsonWriter &w) {
        w.beginObject();
        w.key("kernel").value(c.kernel);
        w.key("class").value(scaling::taxonomyClassName(c.cls));
        w.key("perf_range").value(c.perf_range);
        w.key("cu90").value(static_cast<int64_t>(c.cu90));
        w.key("freq");
        verdict(w, c.freq);
        w.key("mem");
        verdict(w, c.mem);
        w.key("cu");
        verdict(w, c.cu);
        w.endObject();
    });
}

std::string
Service::handlePredict(const Request &req,
                       steady_clock::time_point deadline)
{
    const auto *kernel_name = req.params.find("kernel");
    const auto *cu = req.params.find("cu");
    const auto *core = req.params.find("core_clk_mhz");
    const auto *mem = req.params.find("mem_clk_mhz");
    if (kernel_name == nullptr || !kernel_name->isString() ||
        cu == nullptr || !cu->isNumber() || core == nullptr ||
        !core->isNumber() || mem == nullptr || !mem->isNumber()) {
        return renderError(req.id, ErrorCode::BadRequest,
                           "predict needs params.kernel (string), "
                           "cu, core_clk_mhz, mem_clk_mhz (numbers)");
    }
    // Bounds-check before any grid is built: ConfigGrid::validate()
    // treats a bad point as fatal, and a client must never be able to
    // fatal the daemon.
    const double cu_value = cu->number;
    if (cu_value < 1.0 || cu_value > 4096.0 ||
        cu_value != static_cast<double>(static_cast<int>(cu_value))) {
        return renderError(req.id, ErrorCode::BadRequest,
                           "params.cu must be an integer in "
                           "[1, 4096]");
    }
    if (core->number <= 0.0 || core->number > 1e6 ||
        mem->number <= 0.0 || mem->number > 1e6) {
        return renderError(req.id, ErrorCode::BadRequest,
                           "clock params must be in (0, 1e6] MHz");
    }
    const gpu::KernelDesc *kernel =
        workloads::WorkloadRegistry::instance().findKernel(
            kernel_name->str);
    if (kernel == nullptr)
        return renderError(req.id, ErrorCode::NotFound,
                           "unknown kernel \"" + kernel_name->str +
                               "\"");

    PredictRequest ask;
    ask.kernel = kernel;
    ask.num_cus = static_cast<int>(cu_value);
    ask.core_clk_mhz = core->number;
    ask.mem_clk_mhz = mem->number;
    ask.deadline = deadline;
    const PredictOutcome out = batcher_->predict(ask);
    if (!out.ok)
        return renderError(req.id, out.code, out.message);

    return renderResult(req.id, [&](obs::JsonWriter &w) {
        w.beginObject();
        w.key("kernel").value(kernel->name);
        w.key("cu").value(static_cast<int64_t>(ask.num_cus));
        w.key("core_clk_mhz").value(ask.core_clk_mhz);
        w.key("mem_clk_mhz").value(ask.mem_clk_mhz);
        w.key("runtime_s").value(out.runtime_s);
        w.endObject();
    });
}

std::string
Service::handleCensus(const Request &req,
                      steady_clock::time_point deadline)
{
    const auto *refresh = req.params.find("refresh");
    if (refresh != nullptr && refresh->isBool() && refresh->boolean) {
        // Single-flight refresh under a cancel token armed with the
        // request deadline; a drain cancels it too (requestDrain).
        harness::CancelToken token;
        token.armDeadline(deadline);
        {
            std::lock_guard<std::mutex> lock(refresh_mutex_);
            if (refresh_active_) {
                return renderError(req.id, ErrorCode::RetryAfter,
                                   "a census refresh is already "
                                   "running",
                                   100.0);
            }
            refresh_active_ = true;
            refresh_token_ = &token;
        }
        std::optional<harness::CensusResult> fresh;
        bool cancelled = false;
        try {
            fresh.emplace(harness::runCensus(
                model_, space_, scaling::TaxonomyParams{}, nullptr,
                journal_ ? &*journal_ : nullptr, &token));
        } catch (const harness::CancelledError &) {
            cancelled = true;
        }
        {
            std::lock_guard<std::mutex> lock(refresh_mutex_);
            refresh_active_ = false;
            refresh_token_ = nullptr;
        }
        if (cancelled) {
            return renderError(req.id,
                               draining()
                                   ? ErrorCode::ShuttingDown
                                   : ErrorCode::DeadlineExceeded,
                               "census refresh cancelled");
        }
        std::lock_guard<std::mutex> lock(census_mutex_);
        census_ = std::move(fresh->classifications);
        census_loaded_ = true;
        class_index_.clear();
        for (size_t i = 0; i < census_.size(); ++i)
            class_index_[census_[i].kernel] = i;
    }

    std::lock_guard<std::mutex> lock(census_mutex_);
    if (!census_loaded_)
        return renderError(req.id, ErrorCode::RetryAfter,
                           "census still loading", 250.0);
    const std::vector<size_t> histogram =
        scaling::classHistogram(census_);
    const auto classes = scaling::allTaxonomyClasses();
    return renderResult(req.id, [&](obs::JsonWriter &w) {
        w.beginObject();
        w.key("kernels").value(
            static_cast<uint64_t>(census_.size()));
        w.key("configs").value(static_cast<uint64_t>(space_.size()));
        w.key("classes").beginObject();
        for (size_t i = 0; i < classes.size(); ++i) {
            w.key(scaling::taxonomyClassName(classes[i]))
                .value(static_cast<uint64_t>(histogram[i]));
        }
        w.endObject();
        w.endObject();
    });
}

} // namespace service
} // namespace gpuscale
