/**
 * @file
 * Admission-control implementation.
 */

#include "admission.hh"

#include "base/fault.hh"
#include "obs/metrics.hh"

namespace gpuscale {
namespace service {

namespace {

/** Suggested backoff for a shed request. */
constexpr double kRetryAfterMs = 25.0;

/** Cached instrument references for the admission path. */
struct AdmissionMetrics {
    obs::Counter &admitted;
    obs::Counter &shed;
    obs::Gauge &inflight;

    static AdmissionMetrics &
    get()
    {
        static AdmissionMetrics m{
            obs::Registry::instance().counter(
                "service.admitted", "requests granted an admission "
                                    "slot"),
            obs::Registry::instance().counter(
                "service.shed", "requests shed by admission control "
                                "(bound, quota, or injected fault)"),
            obs::Registry::instance().gauge(
                "service.inflight",
                "admitted requests not yet released"),
        };
        return m;
    }
};

} // namespace

AdmissionControl::AdmissionControl(size_t max_inflight,
                                   size_t client_quota)
    : max_inflight_(max_inflight), client_quota_(client_quota)
{
}

AdmissionVerdict
AdmissionControl::admit(const std::string &client)
{
    AdmissionMetrics &metrics = AdmissionMetrics::get();

    // Injection site: a fired fault sheds exactly like a full bound,
    // so fault plans can saturate the overload path at any load.  An
    // Exception fault would escape into the connection loop's
    // catch-all instead of modeling a shed, so the i/o flavor (plain
    // `true` return) is the one the tests use.
    bool forced_shed = false;
    try {
        forced_shed = faultPoint("service.admit");
    } catch (const FaultInjectedError &) {
        forced_shed = true;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    size_t &client_inflight = per_client_[client];
    if (forced_shed || inflight_ >= max_inflight_ ||
        client_inflight >= client_quota_) {
        metrics.shed.inc();
        return AdmissionVerdict{false, kRetryAfterMs};
    }
    ++inflight_;
    ++client_inflight;
    metrics.admitted.inc();
    metrics.inflight.set(static_cast<double>(inflight_));
    return AdmissionVerdict{true, 0.0};
}

void
AdmissionControl::release(const std::string &client)
{
    AdmissionMetrics &metrics = AdmissionMetrics::get();
    std::lock_guard<std::mutex> lock(mutex_);
    if (inflight_ > 0)
        --inflight_;
    auto it = per_client_.find(client);
    if (it != per_client_.end()) {
        if (it->second > 0)
            --it->second;
        if (it->second == 0)
            per_client_.erase(it);
    }
    metrics.inflight.set(static_cast<double>(inflight_));
}

size_t
AdmissionControl::inflight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return inflight_;
}

} // namespace service
} // namespace gpuscale
