/**
 * @file
 * Wire-protocol implementation.
 */

#include "protocol.hh"

#include <sstream>

namespace gpuscale {
namespace service {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::BadRequest:
        return "BAD_REQUEST";
    case ErrorCode::NotFound:
        return "NOT_FOUND";
    case ErrorCode::RetryAfter:
        return "RETRY_AFTER";
    case ErrorCode::DeadlineExceeded:
        return "DEADLINE_EXCEEDED";
    case ErrorCode::ShuttingDown:
        return "SHUTTING_DOWN";
    case ErrorCode::Internal:
        return "INTERNAL";
    }
    return "INTERNAL";
}

bool
parseRequest(const std::string &line, Request *request,
             std::string *error)
{
    obs::JsonValue doc;
    try {
        doc = obs::parseJson(line);
    } catch (const std::exception &e) {
        *error = std::string("malformed JSON: ") + e.what();
        return false;
    }
    if (!doc.isObject()) {
        *error = "request frame must be a JSON object";
        return false;
    }

    Request req;
    if (const auto *id = doc.find("id"); id != nullptr) {
        if (!id->isNumber() || id->number < 0) {
            *error = "\"id\" must be a non-negative number";
            return false;
        }
        req.id = static_cast<uint64_t>(id->number);
    }
    const auto *op = doc.find("op");
    if (op == nullptr || !op->isString() || op->str.empty()) {
        *error = "missing or empty \"op\"";
        return false;
    }
    req.op = op->str;
    if (const auto *client = doc.find("client"); client != nullptr) {
        if (!client->isString()) {
            *error = "\"client\" must be a string";
            return false;
        }
        req.client = client->str;
    }
    if (const auto *dl = doc.find("deadline_ms"); dl != nullptr) {
        if (!dl->isNumber() || dl->number < 0) {
            *error = "\"deadline_ms\" must be a non-negative number";
            return false;
        }
        req.deadline_ms = dl->number;
    }
    if (const auto *params = doc.find("params"); params != nullptr) {
        if (!params->isObject()) {
            *error = "\"params\" must be an object";
            return false;
        }
        req.params = *params;
    }
    *request = std::move(req);
    return true;
}

std::string
renderResult(uint64_t id,
             const std::function<void(obs::JsonWriter &)> &fill)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.key("id").value(id);
    w.key("ok").value(true);
    w.key("result");
    fill(w);
    w.endObject();
    os << '\n';
    return os.str();
}

std::string
renderRawResult(uint64_t id, const std::string &raw_json)
{
    // The envelope is spliced by hand because the result is already a
    // rendered document (the registry snapshot); JsonWriter would
    // re-escape it.  The envelope's own members are writer-rendered
    // above, so only this splice bypasses it.
    std::ostringstream os;
    os << "{\"id\":" << id << ",\"ok\":true,\"result\":" << raw_json
       << "}\n";
    return os.str();
}

std::string
renderError(uint64_t id, ErrorCode code, const std::string &message,
            double retry_after_ms)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.key("id").value(id);
    w.key("ok").value(false);
    w.key("error").beginObject();
    w.key("code").value(errorCodeName(code));
    w.key("message").value(message);
    if (retry_after_ms > 0.0)
        w.key("retry_after_ms").value(retry_after_ms);
    w.endObject();
    w.endObject();
    os << '\n';
    return os.str();
}

} // namespace service
} // namespace gpuscale
