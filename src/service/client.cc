/**
 * @file
 * Client implementation.
 */

#include "client.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "base/fault.hh"

namespace gpuscale {
namespace service {

namespace {

using steady_clock = std::chrono::steady_clock;

double
remainingMs(steady_clock::time_point deadline)
{
    return std::chrono::duration<double, std::milli>(
               deadline - steady_clock::now())
        .count();
}

} // namespace

Client::Client(std::string socket_path) : path_(std::move(socket_path))
{
}

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    rxbuf_.clear();
}

bool
Client::connect(double timeout_ms)
{
    // Injection site: client-side plans (site prefix "client.*", so
    // service-side "service.*" plans never fire here) can model a
    // client that cannot reach the daemon.
    try {
        if (faultPoint("client.connect"))
            return false;
    } catch (const FaultInjectedError &) {
        return false;
    }

    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path))
        return false;
    std::strncpy(addr.sun_path, path_.c_str(),
                 sizeof(addr.sun_path) - 1);

    const auto deadline = steady_clock::now() +
                          std::chrono::duration_cast<
                              steady_clock::duration>(
                              std::chrono::duration<double, std::milli>(
                                  timeout_ms));
    while (true) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return false;
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            fd_ = fd;
            return true;
        }
        ::close(fd);
        if (remainingMs(deadline) <= 0.0)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

bool
Client::call(const std::string &request_line, double timeout_ms,
             std::string *response)
{
    // Injection site: models a dropped client call; typed server-side
    // failures arrive as frames, this is the transport failing.
    try {
        if (faultPoint("client.call"))
            return false;
    } catch (const FaultInjectedError &) {
        return false;
    }
    if (fd_ < 0)
        return false;

    const auto deadline = steady_clock::now() +
                          std::chrono::duration_cast<
                              steady_clock::duration>(
                              std::chrono::duration<double, std::milli>(
                                  timeout_ms));

    std::string line = request_line;
    if (line.empty() || line.back() != '\n')
        line.push_back('\n');
    size_t off = 0;
    while (off < line.size()) {
        const ssize_t n = ::send(fd_, line.data() + off,
                                 line.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }

    char chunk[4096];
    while (true) {
        const size_t nl = rxbuf_.find('\n');
        if (nl != std::string::npos) {
            *response = rxbuf_.substr(0, nl);
            rxbuf_.erase(0, nl + 1);
            return true;
        }
        const double wait_ms = remainingMs(deadline);
        if (wait_ms <= 0.0)
            return false;
        pollfd pfd{fd_, POLLIN, 0};
        const int ready =
            ::poll(&pfd, 1, static_cast<int>(wait_ms) + 1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (ready == 0)
            return false;
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n == 0)
            return false;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        rxbuf_.append(chunk, static_cast<size_t>(n));
    }
}

} // namespace service
} // namespace gpuscale
