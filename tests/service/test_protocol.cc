/**
 * @file
 * Wire-protocol tests: request parsing with typed rejections, frame
 * rendering round trips, and the error-code vocabulary clients
 * branch on.  Every frame the daemon emits must re-parse — the
 * no-torn-frames guarantee starts with well-formed rendering.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/json.hh"
#include "service/protocol.hh"

namespace gpuscale {
namespace service {
namespace {

Request
mustParse(const std::string &line)
{
    Request req;
    std::string error;
    EXPECT_TRUE(parseRequest(line, &req, &error)) << error;
    return req;
}

std::string
rejectReason(const std::string &line)
{
    Request req;
    std::string error;
    EXPECT_FALSE(parseRequest(line, &req, &error)) << line;
    return error;
}

TEST(Protocol, ParsesFullRequest)
{
    const Request req = mustParse(
        "{\"id\":7,\"op\":\"classify\",\"client\":\"bench\","
        "\"deadline_ms\":1500,"
        "\"params\":{\"kernel\":\"rodinia/hotspot/calculate_temp\"}}");
    EXPECT_EQ(req.id, 7u);
    EXPECT_EQ(req.op, "classify");
    EXPECT_EQ(req.client, "bench");
    EXPECT_DOUBLE_EQ(req.deadline_ms, 1500.0);
    const auto *kernel = req.params.find("kernel");
    ASSERT_NE(kernel, nullptr);
    EXPECT_EQ(kernel->str, "rodinia/hotspot/calculate_temp");
}

TEST(Protocol, OptionalFieldsDefault)
{
    const Request req = mustParse("{\"op\":\"health\"}");
    EXPECT_EQ(req.id, 0u);
    EXPECT_TRUE(req.client.empty());
    EXPECT_DOUBLE_EQ(req.deadline_ms, 0.0);
    EXPECT_TRUE(req.params.isNull());
}

TEST(Protocol, RejectsMalformedFrames)
{
    EXPECT_NE(rejectReason("not json at all").find("malformed"),
              std::string::npos);
    EXPECT_NE(rejectReason("[1,2,3]").find("object"),
              std::string::npos);
    EXPECT_NE(rejectReason("{\"id\":1}").find("op"),
              std::string::npos);
    EXPECT_NE(rejectReason("{\"op\":\"\"}").find("op"),
              std::string::npos);
    EXPECT_NE(rejectReason("{\"op\":\"x\",\"id\":-1}").find("id"),
              std::string::npos);
    EXPECT_NE(rejectReason("{\"op\":\"x\",\"deadline_ms\":-5}")
                  .find("deadline_ms"),
              std::string::npos);
    EXPECT_NE(rejectReason("{\"op\":\"x\",\"params\":3}")
                  .find("params"),
              std::string::npos);
    EXPECT_NE(rejectReason("{\"op\":\"x\",\"client\":9}")
                  .find("client"),
              std::string::npos);
}

TEST(Protocol, ResultFrameRoundTrips)
{
    const std::string frame =
        renderResult(11, [](obs::JsonWriter &w) {
            w.beginObject();
            w.key("answer").value(static_cast<uint64_t>(42));
            w.endObject();
        });
    ASSERT_FALSE(frame.empty());
    EXPECT_EQ(frame.back(), '\n');
    // One frame, one line.
    EXPECT_EQ(frame.find('\n'), frame.size() - 1);

    const obs::JsonValue doc = obs::parseJson(frame);
    EXPECT_DOUBLE_EQ(doc.at("id").number, 11.0);
    EXPECT_TRUE(doc.at("ok").boolean);
    EXPECT_DOUBLE_EQ(doc.at("result").at("answer").number, 42.0);
}

TEST(Protocol, RawResultSplicesVerbatim)
{
    const std::string frame =
        renderRawResult(3, "{\"metrics\":{\"x\":1}}");
    const obs::JsonValue doc = obs::parseJson(frame);
    EXPECT_TRUE(doc.at("ok").boolean);
    EXPECT_DOUBLE_EQ(doc.at("result").at("metrics").at("x").number,
                     1.0);
}

TEST(Protocol, ErrorFrameCarriesTypedCodeAndRetryHint)
{
    const std::string frame = renderError(
        9, ErrorCode::RetryAfter, "shed by admission control", 25.0);
    const obs::JsonValue doc = obs::parseJson(frame);
    EXPECT_FALSE(doc.at("ok").boolean);
    EXPECT_EQ(doc.at("error").at("code").str, "RETRY_AFTER");
    EXPECT_EQ(doc.at("error").at("message").str,
              "shed by admission control");
    EXPECT_DOUBLE_EQ(doc.at("error").at("retry_after_ms").number,
                     25.0);

    // No hint member unless the server set one.
    const std::string plain =
        renderError(9, ErrorCode::NotFound, "unknown kernel");
    EXPECT_EQ(obs::parseJson(plain).at("error").find(
                  "retry_after_ms"),
              nullptr);
}

TEST(Protocol, ErrorCodeNamesAreStableWireContract)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::BadRequest), "BAD_REQUEST");
    EXPECT_STREQ(errorCodeName(ErrorCode::NotFound), "NOT_FOUND");
    EXPECT_STREQ(errorCodeName(ErrorCode::RetryAfter), "RETRY_AFTER");
    EXPECT_STREQ(errorCodeName(ErrorCode::DeadlineExceeded),
                 "DEADLINE_EXCEEDED");
    EXPECT_STREQ(errorCodeName(ErrorCode::ShuttingDown),
                 "SHUTTING_DOWN");
    EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "INTERNAL");
}

} // namespace
} // namespace service
} // namespace gpuscale
