/**
 * @file
 * Admission-control tests: the global bound, per-client quotas,
 * release accounting, the never-blocks contract, and forced sheds
 * through the `service.admit` fault site.
 */

#include <gtest/gtest.h>

#include <string>

#include "base/fault.hh"
#include "service/admission.hh"

namespace gpuscale {
namespace service {
namespace {

TEST(Admission, AdmitsUpToTheGlobalBound)
{
    AdmissionControl ctl(3, 3);
    for (int i = 0; i < 3; ++i) {
        const auto v = ctl.admit("a");
        EXPECT_TRUE(v.admitted) << "request " << i;
    }
    EXPECT_EQ(ctl.inflight(), 3u);

    const auto shed = ctl.admit("a");
    EXPECT_FALSE(shed.admitted);
    EXPECT_GT(shed.retry_after_ms, 0.0);
    // A shed request takes no slot.
    EXPECT_EQ(ctl.inflight(), 3u);
}

TEST(Admission, PerClientQuotaShedsBeforeTheGlobalBound)
{
    AdmissionControl ctl(8, 2);
    EXPECT_TRUE(ctl.admit("greedy").admitted);
    EXPECT_TRUE(ctl.admit("greedy").admitted);

    // The greedy client is out of quota while the bound has room...
    const auto shed = ctl.admit("greedy");
    EXPECT_FALSE(shed.admitted);
    EXPECT_GT(shed.retry_after_ms, 0.0);

    // ...which another client can still use.
    EXPECT_TRUE(ctl.admit("polite").admitted);
    EXPECT_EQ(ctl.inflight(), 3u);
}

TEST(Admission, ReleaseReturnsSlotAndQuota)
{
    AdmissionControl ctl(2, 1);
    EXPECT_TRUE(ctl.admit("a").admitted);
    EXPECT_FALSE(ctl.admit("a").admitted);

    ctl.release("a");
    EXPECT_EQ(ctl.inflight(), 0u);
    EXPECT_TRUE(ctl.admit("a").admitted);
}

TEST(Admission, AnonymousClientsShareOneQuotaBucket)
{
    AdmissionControl ctl(8, 2);
    EXPECT_TRUE(ctl.admit("").admitted);
    EXPECT_TRUE(ctl.admit("").admitted);
    EXPECT_FALSE(ctl.admit("").admitted);
}

TEST(Admission, FaultSiteForcesShedsDeterministically)
{
    // A rate-1.0 io fault on service.admit must shed every request
    // even with the bound wide open — the saturation test's lever.
    FaultInjector::instance().arm(
        {{"service.admit", 1.0, FaultKind::IoError, 0.0}}, 0);
    AdmissionControl ctl(64, 64);
    const auto v = ctl.admit("a");
    EXPECT_FALSE(v.admitted);
    EXPECT_GT(v.retry_after_ms, 0.0);
    EXPECT_EQ(ctl.inflight(), 0u);
    FaultInjector::instance().disarm();

    EXPECT_TRUE(ctl.admit("a").admitted);
}

TEST(Admission, ExceptionFaultIsAbsorbedAsShed)
{
    // A throw-kind fault at the admit probe must not escape into the
    // connection loop; it degrades to a typed shed.
    FaultInjector::instance().arm(
        {{"service.admit", 1.0, FaultKind::Exception, 0.0}}, 0);
    AdmissionControl ctl(64, 64);
    AdmissionVerdict v;
    EXPECT_NO_THROW(v = ctl.admit("a"));
    EXPECT_FALSE(v.admitted);
    FaultInjector::instance().disarm();
}

} // namespace
} // namespace service
} // namespace gpuscale
