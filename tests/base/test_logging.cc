/**
 * @file
 * Unit tests for the logging/error primitives.
 */

#include "base/logging.hh"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace gpuscale {
namespace {

std::vector<std::pair<LogLevel, std::string>> g_captured;

void
captureSink(LogLevel level, const std::string &msg)
{
    g_captured.emplace_back(level, msg);
}

class LoggingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        g_captured.clear();
        setLogSink(captureSink);
        setLogThrowOnTerminate(true);
    }

    void
    TearDown() override
    {
        setLogSink(nullptr);
        setLogThrowOnTerminate(false);
    }
};

TEST_F(LoggingTest, StrprintfFormats)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 7, "ok"), "x=7 y=ok");
    EXPECT_EQ(strprintf("%.2f", 1.5), "1.50");
    EXPECT_EQ(strprintf("plain"), "plain");
}

TEST_F(LoggingTest, StrprintfLongOutput)
{
    const std::string big(5000, 'a');
    EXPECT_EQ(strprintf("%s", big.c_str()).size(), 5000u);
}

TEST_F(LoggingTest, InformGoesToSink)
{
    inform("hello %d", 42);
    ASSERT_EQ(g_captured.size(), 1u);
    EXPECT_EQ(g_captured[0].first, LogLevel::Inform);
    EXPECT_EQ(g_captured[0].second, "hello 42");
}

TEST_F(LoggingTest, WarnGoesToSink)
{
    warn("watch out");
    ASSERT_EQ(g_captured.size(), 1u);
    EXPECT_EQ(g_captured[0].first, LogLevel::Warn);
}

TEST_F(LoggingTest, FatalThrowsWhenHooked)
{
    EXPECT_THROW(fatal("bad user input %d", 3), std::runtime_error);
    ASSERT_EQ(g_captured.size(), 1u);
    EXPECT_EQ(g_captured[0].first, LogLevel::Fatal);
    EXPECT_EQ(g_captured[0].second, "bad user input 3");
}

TEST_F(LoggingTest, PanicThrowsWhenHooked)
{
    EXPECT_THROW(panic("invariant violated"), std::runtime_error);
    ASSERT_EQ(g_captured.size(), 1u);
    EXPECT_EQ(g_captured[0].first, LogLevel::Panic);
}

TEST_F(LoggingTest, PanicIfOnlyFiresOnTrue)
{
    EXPECT_NO_THROW(panic_if(false, "never"));
    EXPECT_THROW(panic_if(1 + 1 == 2, "fires"), std::runtime_error);
}

TEST_F(LoggingTest, FatalIfOnlyFiresOnTrue)
{
    EXPECT_NO_THROW(fatal_if(false, "never"));
    EXPECT_THROW(fatal_if(true, "fires"), std::runtime_error);
}

TEST_F(LoggingTest, MessagesCarryFormattedArguments)
{
    EXPECT_THROW(fatal("a=%d b=%s c=%.1f", 1, "two", 3.0),
                 std::runtime_error);
    EXPECT_EQ(g_captured[0].second, "a=1 b=two c=3.0");
}

} // namespace
} // namespace gpuscale
