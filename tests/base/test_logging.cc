/**
 * @file
 * Unit tests for the logging/error primitives.
 */

#include "base/logging.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace gpuscale {
namespace {

std::vector<std::pair<LogLevel, std::string>> g_captured;

void
captureSink(LogLevel level, const std::string &msg)
{
    g_captured.emplace_back(level, msg);
}

class LoggingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        g_captured.clear();
        setLogSink(captureSink);
        setLogThrowOnTerminate(true);
    }

    void
    TearDown() override
    {
        setLogSink(nullptr);
        setLogThrowOnTerminate(false);
        setLogLevel(LogLevel::Inform);
    }
};

TEST_F(LoggingTest, StrprintfFormats)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 7, "ok"), "x=7 y=ok");
    EXPECT_EQ(strprintf("%.2f", 1.5), "1.50");
    EXPECT_EQ(strprintf("plain"), "plain");
}

TEST_F(LoggingTest, StrprintfLongOutput)
{
    const std::string big(5000, 'a');
    EXPECT_EQ(strprintf("%s", big.c_str()).size(), 5000u);
}

TEST_F(LoggingTest, InformGoesToSink)
{
    inform("hello %d", 42);
    ASSERT_EQ(g_captured.size(), 1u);
    EXPECT_EQ(g_captured[0].first, LogLevel::Inform);
    EXPECT_EQ(g_captured[0].second, "hello 42");
}

TEST_F(LoggingTest, WarnGoesToSink)
{
    warn("watch out");
    ASSERT_EQ(g_captured.size(), 1u);
    EXPECT_EQ(g_captured[0].first, LogLevel::Warn);
}

TEST_F(LoggingTest, FatalThrowsWhenHooked)
{
    EXPECT_THROW(fatal("bad user input %d", 3), std::runtime_error);
    ASSERT_EQ(g_captured.size(), 1u);
    EXPECT_EQ(g_captured[0].first, LogLevel::Fatal);
    EXPECT_EQ(g_captured[0].second, "bad user input 3");
}

TEST_F(LoggingTest, PanicThrowsWhenHooked)
{
    EXPECT_THROW(panic("invariant violated"), std::runtime_error);
    ASSERT_EQ(g_captured.size(), 1u);
    EXPECT_EQ(g_captured[0].first, LogLevel::Panic);
}

TEST_F(LoggingTest, PanicIfOnlyFiresOnTrue)
{
    EXPECT_NO_THROW(panic_if(false, "never"));
    EXPECT_THROW(panic_if(1 + 1 == 2, "fires"), std::runtime_error);
}

TEST_F(LoggingTest, FatalIfOnlyFiresOnTrue)
{
    EXPECT_NO_THROW(fatal_if(false, "never"));
    EXPECT_THROW(fatal_if(true, "fires"), std::runtime_error);
}

TEST_F(LoggingTest, MessagesCarryFormattedArguments)
{
    EXPECT_THROW(fatal("a=%d b=%s c=%.1f", 1, "two", 3.0),
                 std::runtime_error);
    EXPECT_EQ(g_captured[0].second, "a=1 b=two c=3.0");
}

TEST_F(LoggingTest, DebugIsDroppedAtDefaultLevel)
{
    ASSERT_EQ(logLevel(), LogLevel::Inform);
    EXPECT_FALSE(logLevelEnabled(LogLevel::Debug));
    debuglog("invisible %d", 1);
    EXPECT_TRUE(g_captured.empty());
}

TEST_F(LoggingTest, DebugEmitsWhenLevelLowered)
{
    setLogLevel(LogLevel::Debug);
    EXPECT_TRUE(logLevelEnabled(LogLevel::Debug));
    debuglog("visible %d", 2);
    ASSERT_EQ(g_captured.size(), 1u);
    EXPECT_EQ(g_captured[0].first, LogLevel::Debug);
    EXPECT_EQ(g_captured[0].second, "visible 2");
}

TEST_F(LoggingTest, WarnLevelSuppressesInformButNotWarn)
{
    setLogLevel(LogLevel::Warn);
    inform("dropped");
    EXPECT_TRUE(g_captured.empty());
    warn("kept");
    ASSERT_EQ(g_captured.size(), 1u);
    EXPECT_EQ(g_captured[0].first, LogLevel::Warn);
}

TEST_F(LoggingTest, FatalAlwaysEmitsEvenWhenQuiet)
{
    // "quiet" maps to a floor above Warn; Fatal/Panic still emit.
    setLogLevel(LogLevel::Fatal);
    warn("dropped");
    EXPECT_TRUE(g_captured.empty());
    EXPECT_THROW(fatal("still heard"), std::runtime_error);
    ASSERT_EQ(g_captured.size(), 1u);
    EXPECT_EQ(g_captured[0].first, LogLevel::Fatal);
}

TEST_F(LoggingTest, ElapsedClockIsMonotonic)
{
    const double a = logElapsedSeconds();
    const double b = logElapsedSeconds();
    EXPECT_GE(a, 0.0);
    EXPECT_GE(b, a);
}

// The concurrent test uses its own atomic-counting sink: the capture
// vector above is fine under the serialized sink, but counting keeps
// the assertion independent of container internals.
std::atomic<uint64_t> g_concurrent_count{0};

void
countingSink(LogLevel, const std::string &)
{
    g_concurrent_count.fetch_add(1, std::memory_order_relaxed);
}

TEST_F(LoggingTest, ConcurrentLoggingIsSerialized)
{
    g_concurrent_count.store(0);
    setLogSink(countingSink);

    constexpr int kThreads = 8;
    constexpr int kPerThread = 500;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t]() {
            for (int i = 0; i < kPerThread; ++i) {
                if (i % 2 == 0)
                    warn("thread %d message %d", t, i);
                else
                    inform("thread %d message %d", t, i);
            }
            // Swapping the sink mid-flight must also be safe; this
            // reinstalls the same one.
            setLogSink(countingSink);
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(g_concurrent_count.load(), kThreads * kPerThread);
}

} // namespace
} // namespace gpuscale
