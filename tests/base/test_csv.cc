/**
 * @file
 * Unit tests for CSV reading/writing.
 */

#include "base/csv.hh"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "base/logging.hh"

namespace gpuscale {
namespace {

TEST(CsvEscapeTest, PlainPassthrough)
{
    EXPECT_EQ(csvEscape("hello"), "hello");
    EXPECT_EQ(csvEscape(""), "");
}

TEST(CsvEscapeTest, QuotesWhenNeeded)
{
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterTest, WritesRows)
{
    std::ostringstream os;
    CsvWriter w(os);
    w.row({"a", "b"});
    w.cell("x,y").cell(static_cast<int64_t>(3)).endRow();
    EXPECT_EQ(os.str(), "a,b\n\"x,y\",3\n");
    EXPECT_EQ(w.rowsWritten(), 2u);
}

TEST(CsvWriterTest, DoubleRoundTripsAtFullPrecision)
{
    std::ostringstream os;
    CsvWriter w(os);
    w.cell(0.1234567890123456789).endRow();
    const double parsed = std::stod(os.str());
    EXPECT_DOUBLE_EQ(parsed, 0.1234567890123456789);
}

TEST(CsvParseTest, HeaderAndRows)
{
    const auto doc = parseCsv("a,b,c\n1,2,3\n4,5,6\n");
    ASSERT_EQ(doc.header.size(), 3u);
    ASSERT_EQ(doc.rows.size(), 2u);
    EXPECT_EQ(doc.rows[1][2], "6");
    EXPECT_EQ(doc.columnIndex("b"), 1u);
}

TEST(CsvParseTest, QuotedFieldsWithCommasAndNewlines)
{
    const auto doc =
        parseCsv("name,note\nalice,\"x, y\"\nbob,\"multi\nline\"\n");
    ASSERT_EQ(doc.rows.size(), 2u);
    EXPECT_EQ(doc.rows[0][1], "x, y");
    EXPECT_EQ(doc.rows[1][1], "multi\nline");
}

TEST(CsvParseTest, EscapedQuotes)
{
    const auto doc = parseCsv("v\n\"say \"\"hi\"\"\"\n");
    ASSERT_EQ(doc.rows.size(), 1u);
    EXPECT_EQ(doc.rows[0][0], "say \"hi\"");
}

TEST(CsvParseTest, CrLfTerminators)
{
    const auto doc = parseCsv("a,b\r\n1,2\r\n");
    ASSERT_EQ(doc.rows.size(), 1u);
    EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(CsvParseTest, MissingFinalNewline)
{
    const auto doc = parseCsv("a\n1");
    ASSERT_EQ(doc.rows.size(), 1u);
    EXPECT_EQ(doc.rows[0][0], "1");
}

TEST(CsvParseTest, EmptyFieldsPreserved)
{
    const auto doc = parseCsv("a,b,c\n,,\n");
    ASSERT_EQ(doc.rows.size(), 1u);
    EXPECT_EQ(doc.rows[0].size(), 3u);
    EXPECT_EQ(doc.rows[0][0], "");
}

TEST(CsvParseTest, RoundTripThroughWriter)
{
    std::ostringstream os;
    CsvWriter w(os);
    w.row({"k", "v"});
    w.row({"comma,here", "quote\"here"});
    w.row({"new\nline", "plain"});

    const auto doc = parseCsv(os.str());
    ASSERT_EQ(doc.rows.size(), 2u);
    EXPECT_EQ(doc.rows[0][0], "comma,here");
    EXPECT_EQ(doc.rows[0][1], "quote\"here");
    EXPECT_EQ(doc.rows[1][0], "new\nline");
}

class CsvErrorTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogThrowOnTerminate(true); }
    void TearDown() override { setLogThrowOnTerminate(false); }
};

TEST_F(CsvErrorTest, UnterminatedQuoteIsFatal)
{
    EXPECT_THROW(parseCsv("a\n\"oops\n"), std::runtime_error);
}

TEST_F(CsvErrorTest, UnknownColumnIsFatal)
{
    const auto doc = parseCsv("a,b\n1,2\n");
    EXPECT_THROW(doc.columnIndex("missing"), std::runtime_error);
}

} // namespace
} // namespace gpuscale
