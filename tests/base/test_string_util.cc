/**
 * @file
 * Unit tests for string helpers.
 */

#include "base/string_util.hh"

#include <gtest/gtest.h>

namespace gpuscale {
namespace {

TEST(SplitTest, BasicAndEmptyFields)
{
    EXPECT_EQ(split("a,b,c", ','),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("a,,c", ','),
              (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(split("x,", ','), (std::vector<std::string>{"x", ""}));
}

TEST(TrimTest, Whitespace)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("\t\nhi"), "hi");
    EXPECT_EQ(trim("hi"), "hi");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(JoinTest, Basic)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({"solo"}, ","), "solo");
    EXPECT_EQ(join({}, ","), "");
}

TEST(PadTest, LeftAndRight)
{
    EXPECT_EQ(padLeft("ab", 5), "   ab");
    EXPECT_EQ(padRight("ab", 5), "ab   ");
    EXPECT_EQ(padLeft("abcdef", 3), "abcdef"); // never truncates
}

TEST(FormatDoubleTest, Decimals)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
    EXPECT_EQ(formatDouble(-1.5, 1), "-1.5");
}

TEST(FormatSiTest, Scales)
{
    EXPECT_EQ(formatSi(1234.0, 2), "1.23k");
    EXPECT_EQ(formatSi(2.5e6, 1), "2.5M");
    EXPECT_EQ(formatSi(7.0e9, 0), "7G");
    EXPECT_EQ(formatSi(3.2e12, 1), "3.2T");
    EXPECT_EQ(formatSi(12.0, 1), "12.0");
    EXPECT_EQ(formatSi(-4.0e6, 1), "-4.0M");
}

TEST(StartsWithTest, Basic)
{
    EXPECT_TRUE(startsWith("rodinia/bfs", "rodinia"));
    EXPECT_FALSE(startsWith("rod", "rodinia"));
    EXPECT_TRUE(startsWith("x", ""));
}

TEST(ToLowerTest, Ascii)
{
    EXPECT_EQ(toLower("MiXeD 123"), "mixed 123");
}

} // namespace
} // namespace gpuscale
