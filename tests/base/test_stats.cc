/**
 * @file
 * Unit tests for the statistics framework.
 */

#include "base/stats.hh"

#include <gtest/gtest.h>

#include <sstream>

namespace gpuscale {
namespace stats {
namespace {

TEST(ScalarTest, AccumulateAndReset)
{
    StatGroup group("sim");
    Scalar &s = group.addScalar("cycles", "total cycles");
    s += 10.0;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 11.0);
    s.set(5.0);
    EXPECT_DOUBLE_EQ(s.value(), 5.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(DistributionTest, MomentsAndExtremes)
{
    StatGroup group("sim");
    Distribution &d =
        group.addDistribution("lat", "latency", 0.0, 100.0, 10);
    for (double v : {10.0, 20.0, 30.0, 40.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 25.0);
    EXPECT_DOUBLE_EQ(d.minSample(), 10.0);
    EXPECT_DOUBLE_EQ(d.maxSample(), 40.0);
    EXPECT_NEAR(d.stddev(), 11.1803398875, 1e-9);
}

TEST(DistributionTest, Buckets)
{
    StatGroup group("sim");
    Distribution &d =
        group.addDistribution("lat", "latency", 0.0, 100.0, 10);
    d.sample(5.0);   // bucket 0
    d.sample(15.0);  // bucket 1
    d.sample(15.5);  // bucket 1
    d.sample(99.9);  // bucket 9
    d.sample(-1.0);  // underflow
    d.sample(100.0); // overflow (hi is exclusive)
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.buckets()[1], 2u);
    EXPECT_EQ(d.buckets()[9], 1u);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 1u);
}

TEST(DistributionTest, ResetClearsEverything)
{
    StatGroup group("sim");
    Distribution &d = group.addDistribution("x", "x", 0, 10, 2);
    d.sample(1.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.buckets()[0], 0u);
}

TEST(FormulaTest, EvaluatesLazily)
{
    StatGroup group("sim");
    Scalar &num = group.addScalar("insts", "instructions");
    Scalar &den = group.addScalar("cycles", "cycles");
    Formula &ipc = group.addFormula("ipc", "insts per cycle", [&] {
        return den.value() > 0 ? num.value() / den.value() : 0.0;
    });
    EXPECT_DOUBLE_EQ(ipc.value(), 0.0);
    num += 30;
    den += 10;
    EXPECT_DOUBLE_EQ(ipc.value(), 3.0);
}

TEST(StatGroupTest, PrintIncludesPrefixAndDesc)
{
    StatGroup group("gpu.cu0");
    Scalar &s = group.addScalar("waves", "wavefronts launched");
    s += 7;
    std::ostringstream os;
    group.printAll(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("gpu.cu0.waves 7"), std::string::npos);
    EXPECT_NE(text.find("wavefronts launched"), std::string::npos);
}

TEST(StatGroupTest, ResetAllResetsEveryStat)
{
    StatGroup group("g");
    Scalar &a = group.addScalar("a", "a");
    Distribution &d = group.addDistribution("d", "d", 0, 1, 1);
    a += 3;
    d.sample(0.5);
    group.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(group.size(), 2u);
}

} // namespace
} // namespace stats
} // namespace gpuscale
