/**
 * @file
 * Fault injector tests: plan parsing, seeded determinism, the three
 * fault kinds, prefix globs, and the observer hook.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "base/fault.hh"

namespace gpuscale {
namespace {

/** Disarm around every test so plans never leak between cases. */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().disarm(); }
    void TearDown() override
    {
        FaultInjector::instance().setObserver(nullptr);
        FaultInjector::instance().disarm();
    }
};

TEST_F(FaultTest, ParsesFullPlanGrammar)
{
    std::string error;
    const auto plan = parseFaultPlan(
        "sweep_cache.disk.read:0.1:io, sweep.kernel:1:delay:20",
        &error);
    ASSERT_TRUE(plan.has_value()) << error;
    ASSERT_EQ(plan->size(), 2u);

    EXPECT_EQ((*plan)[0].site, "sweep_cache.disk.read");
    EXPECT_DOUBLE_EQ((*plan)[0].rate, 0.1);
    EXPECT_EQ((*plan)[0].kind, FaultKind::IoError);

    EXPECT_EQ((*plan)[1].site, "sweep.kernel");
    EXPECT_DOUBLE_EQ((*plan)[1].rate, 1.0);
    EXPECT_EQ((*plan)[1].kind, FaultKind::Delay);
    EXPECT_DOUBLE_EQ((*plan)[1].delay_ms, 20.0);
}

TEST_F(FaultTest, KindDefaultsToThrowAndEmptyPlanIsEmpty)
{
    std::string error;
    const auto plan = parseFaultPlan("a.site:0.5", &error);
    ASSERT_TRUE(plan.has_value()) << error;
    ASSERT_EQ(plan->size(), 1u);
    EXPECT_EQ((*plan)[0].kind, FaultKind::Exception);
    EXPECT_DOUBLE_EQ((*plan)[0].delay_ms, 0.0);

    const auto empty = parseFaultPlan("  ", &error);
    ASSERT_TRUE(empty.has_value()) << error;
    EXPECT_TRUE(empty->empty());
}

TEST_F(FaultTest, RejectsMalformedPlans)
{
    const std::vector<std::string> bad = {
        "nonsense",          // no rate field at all
        "site:1.5",          // rate outside [0, 1]
        "site:-0.1",         // negative rate
        ":0.5",              // empty site
        "site:0.5:bogus",    // unknown kind
        "site:0.5:io:10",    // delay_ms on a non-delay kind
        "site:1:delay:-3",   // negative delay
        "site:1:delay:3:x",  // too many fields
    };
    for (const auto &text : bad) {
        std::string error;
        EXPECT_FALSE(parseFaultPlan(text, &error).has_value()) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST_F(FaultTest, SameSeedFiresAtTheSameProbeOrdinals)
{
    auto &inj = FaultInjector::instance();
    const std::vector<FaultSpec> plan = {
        {"det.site", 0.3, FaultKind::IoError, 0.0}};

    auto pattern = [&](uint64_t seed) {
        inj.arm(plan, seed);
        std::vector<bool> fired;
        for (int i = 0; i < 200; ++i)
            fired.push_back(faultPoint("det.site"));
        return fired;
    };

    const auto a = pattern(7);
    const auto b = pattern(7);
    EXPECT_EQ(a, b);

    // Roughly rate * probes fire; exact equality with run b is the
    // determinism claim, the count just guards against all-or-nothing.
    const size_t hits = std::count(a.begin(), a.end(), true);
    EXPECT_GT(hits, 0u);
    EXPECT_LT(hits, a.size());

    EXPECT_NE(pattern(8), a);
}

TEST_F(FaultTest, ExceptionKindThrowsAndCounts)
{
    auto &inj = FaultInjector::instance();
    inj.arm({{"boom", 1.0, FaultKind::Exception, 0.0}}, 0);
    EXPECT_THROW(faultPoint("boom"), FaultInjectedError);
    EXPECT_EQ(inj.fired(FaultKind::Exception), 1u);
    EXPECT_EQ(inj.firedTotal(), 1u);
}

TEST_F(FaultTest, DelayKindSleepsThenProceeds)
{
    auto &inj = FaultInjector::instance();
    inj.arm({{"slow", 1.0, FaultKind::Delay, 1.0}}, 0);
    // The probe returns false: the operation proceeds after the stall.
    EXPECT_FALSE(faultPoint("slow"));
    EXPECT_EQ(inj.fired(FaultKind::Delay), 1u);
}

TEST_F(FaultTest, PrefixGlobMatchesSitesUnderThePrefix)
{
    auto &inj = FaultInjector::instance();
    inj.arm({{"glob.*", 1.0, FaultKind::IoError, 0.0}}, 0);
    EXPECT_TRUE(faultPoint("glob.alpha"));
    EXPECT_TRUE(faultPoint("glob.beta.gamma"));
    EXPECT_FALSE(faultPoint("other.site"));
    EXPECT_EQ(inj.fired(FaultKind::IoError), 2u);
}

TEST_F(FaultTest, DisarmRestoresTheZeroCostPath)
{
    auto &inj = FaultInjector::instance();
    inj.arm({{"gone", 1.0, FaultKind::IoError, 0.0}}, 0);
    ASSERT_TRUE(inj.armed());
    inj.disarm();
    EXPECT_FALSE(inj.armed());
    EXPECT_FALSE(faultPoint("gone"));
}

TEST_F(FaultTest, ObserverSeesEveryFiredFault)
{
    static std::atomic<int> io_seen{0};
    static std::atomic<int> other_seen{0};
    io_seen = 0;
    other_seen = 0;

    auto &inj = FaultInjector::instance();
    inj.setObserver(+[](FaultKind kind, const char *) {
        (kind == FaultKind::IoError ? io_seen : other_seen)
            .fetch_add(1);
    });
    inj.arm({{"watched", 1.0, FaultKind::IoError, 0.0}}, 0);
    faultPoint("watched");
    faultPoint("watched");
    faultPoint("unmatched");
    EXPECT_EQ(io_seen.load(), 2);
    EXPECT_EQ(other_seen.load(), 0);
}

} // namespace
} // namespace gpuscale
