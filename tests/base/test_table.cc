/**
 * @file
 * Unit tests for TextTable rendering.
 */

#include "base/table.hh"

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"

namespace gpuscale {
namespace {

TEST(TextTableTest, RendersMarkdownShape)
{
    TextTable t;
    t.addColumn("name");
    t.addColumn("count", TextTable::Align::Right);
    t.row({"alpha", "3"});
    t.row({"b", "12345"});

    const std::string out = t.render();
    // Header, separator, two rows.
    EXPECT_NE(out.find("| name "), std::string::npos);
    EXPECT_NE(out.find("| alpha |"), std::string::npos);
    // Right-aligned column pads on the left.
    EXPECT_NE(out.find("|     3 |"), std::string::npos);
    // Markdown right-align marker.
    EXPECT_NE(out.find("-:|"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.numColumns(), 2u);
}

TEST(TextTableTest, NumericCells)
{
    TextTable t;
    t.addColumn("v");
    t.beginRow();
    t.cell(3.14159, 2);
    t.beginRow();
    t.cell(static_cast<int64_t>(-7));
    const std::string out = t.render();
    EXPECT_NE(out.find("3.14"), std::string::npos);
    EXPECT_NE(out.find("-7"), std::string::npos);
}

TEST(TextTableTest, ColumnWidthTracksWidestCell)
{
    TextTable t;
    t.addColumn("h");
    t.row({"wide-cell-content"});
    const std::string out = t.render();
    // The header row is padded to the widest cell.
    EXPECT_NE(out.find("| h                 |"), std::string::npos);
}

class TextTableErrorTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogThrowOnTerminate(true); }
    void TearDown() override { setLogThrowOnTerminate(false); }
};

TEST_F(TextTableErrorTest, RowWidthMismatchPanics)
{
    TextTable t;
    t.addColumn("a");
    t.addColumn("b");
    EXPECT_THROW(t.row({"only-one"}), std::runtime_error);
}

TEST_F(TextTableErrorTest, CellOverflowPanics)
{
    TextTable t;
    t.addColumn("a");
    t.beginRow();
    t.cell("x");
    EXPECT_THROW(t.cell("y"), std::runtime_error);
}

TEST_F(TextTableErrorTest, RenderWithoutColumnsPanics)
{
    TextTable t;
    EXPECT_THROW(t.render(), std::runtime_error);
}

TEST_F(TextTableErrorTest, AddColumnAfterRowsPanics)
{
    TextTable t;
    t.addColumn("a");
    t.row({"1"});
    EXPECT_THROW(t.addColumn("b"), std::runtime_error);
}

} // namespace
} // namespace gpuscale
