/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */

#include "base/random.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace gpuscale {
namespace {

TEST(RngTest, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(RngTest, CopyForksStream)
{
    Rng a(7);
    a.next();
    Rng b = a;
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(42);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    Rng rng(42);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(RngTest, UniformMeanIsCentered)
{
    Rng rng(42);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntInclusiveBounds)
{
    Rng rng(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    // All five values should appear over 1000 draws.
    EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntSingleton)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.uniformInt(5, 5), 5);
}

TEST(RngTest, NormalMoments)
{
    Rng rng(1234);
    const int n = 200000;
    double sum = 0, sum_sq = 0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sum_sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalShifted)
{
    Rng rng(55);
    const int n = 100000;
    double sum = 0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, LogUniformStaysInRange)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.logUniform(2.0, 2000.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LE(v, 2000.0 * (1 + 1e-12));
    }
}

TEST(RngTest, ChanceExtremes)
{
    Rng rng(8);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RngTest, ChanceFrequency)
{
    Rng rng(8);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitIsDeterministic)
{
    Rng a(77), b(77);
    Rng sa = a.split();
    Rng sb = b.split();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(sa.next(), sb.next());
}

TEST(RngTest, SplitDivergesFromParent)
{
    Rng a(77);
    Rng child = a.split();
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == child.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

/** Parameterized: stream quality holds across many seeds. */
class RngSeedSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RngSeedSweep, UniformMeanAndSupport)
{
    Rng rng(GetParam());
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 2ull, 42ull,
                                           0xdeadbeefull,
                                           0xffffffffffffffffull));

} // namespace
} // namespace gpuscale
