/**
 * @file
 * Unit and property tests for the numerical utilities.
 */

#include "base/math_util.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/random.hh"

namespace gpuscale {
namespace {

TEST(LinearFitTest, ExactLine)
{
    const std::vector<double> x{1, 2, 3, 4, 5};
    const std::vector<double> y{3, 5, 7, 9, 11}; // y = 2x + 1
    const LinearFit fit = linearFit(x, y);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFitTest, ConstantY)
{
    const std::vector<double> x{1, 2, 3};
    const std::vector<double> y{4, 4, 4};
    const LinearFit fit = linearFit(x, y);
    EXPECT_NEAR(fit.slope, 0.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFitTest, NoisyLineHasHighR2)
{
    Rng rng(5);
    std::vector<double> x, y;
    for (int i = 0; i < 100; ++i) {
        x.push_back(i);
        y.push_back(3.0 * i + 2.0 + rng.normal(0.0, 1.0));
    }
    const LinearFit fit = linearFit(x, y);
    EXPECT_NEAR(fit.slope, 3.0, 0.05);
    EXPECT_GT(fit.r2, 0.99);
}

TEST(LinearFitTest, UnrelatedDataHasLowR2)
{
    Rng rng(6);
    std::vector<double> x, y;
    for (int i = 0; i < 200; ++i) {
        x.push_back(i);
        y.push_back(rng.normal(0.0, 1.0));
    }
    EXPECT_LT(linearFit(x, y).r2, 0.1);
}

TEST(LogLogFitTest, RecoversPowerLawExponent)
{
    std::vector<double> x, y;
    for (double v = 1; v <= 64; v *= 2) {
        x.push_back(v);
        y.push_back(5.0 * std::pow(v, 1.7));
    }
    const LinearFit fit = logLogFit(x, y);
    EXPECT_NEAR(fit.slope, 1.7, 1e-9);
    EXPECT_NEAR(std::exp(fit.intercept), 5.0, 1e-9);
}

TEST(SummaryStatsTest, MeanStddevGeomean)
{
    const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_NEAR(mean(v), 5.0, 1e-12);
    EXPECT_NEAR(stddev(v), 2.0, 1e-12);

    const std::vector<double> g{1, 8};
    EXPECT_NEAR(geomean(g), std::sqrt(8.0), 1e-12);
}

TEST(SummaryStatsTest, EmptyInputs)
{
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_EQ(stddev({}), 0.0);
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(PercentileTest, Interpolates)
{
    const std::vector<double> v{10, 20, 30, 40};
    EXPECT_NEAR(percentile(v, 0), 10.0, 1e-12);
    EXPECT_NEAR(percentile(v, 100), 40.0, 1e-12);
    EXPECT_NEAR(percentile(v, 50), 25.0, 1e-12);
    // Unsorted input is sorted internally.
    const std::vector<double> u{40, 10, 30, 20};
    EXPECT_NEAR(percentile(u, 50), 25.0, 1e-12);
}

TEST(PearsonTest, PerfectAndInverse)
{
    const std::vector<double> x{1, 2, 3, 4};
    const std::vector<double> up{2, 4, 6, 8};
    const std::vector<double> down{8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, up), 1.0, 1e-12);
    EXPECT_NEAR(pearson(x, down), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSideIsZero)
{
    const std::vector<double> x{1, 2, 3};
    const std::vector<double> c{5, 5, 5};
    EXPECT_EQ(pearson(x, c), 0.0);
}

TEST(MonotoneFractionTest, Cases)
{
    EXPECT_EQ(monotoneIncreasingFraction(std::vector<double>{1, 2, 3}),
              1.0);
    EXPECT_EQ(monotoneIncreasingFraction(std::vector<double>{3, 2, 1}),
              0.0);
    EXPECT_NEAR(
        monotoneIncreasingFraction(std::vector<double>{1, 2, 1, 2, 3}),
        0.75, 1e-12);
    // Tiny dips within tolerance count as flat.
    EXPECT_EQ(monotoneIncreasingFraction(
                  std::vector<double>{1.0, 1.0 - 1e-12, 1.0}),
              1.0);
}

TEST(NormalizeTest, ToFirstAndTo01)
{
    const std::vector<double> v{2, 4, 8};
    const auto n1 = normalizeToFirst(v);
    EXPECT_DOUBLE_EQ(n1[0], 1.0);
    EXPECT_DOUBLE_EQ(n1[2], 4.0);

    const auto n2 = normalize01(v);
    EXPECT_DOUBLE_EQ(n2[0], 0.0);
    EXPECT_DOUBLE_EQ(n2[2], 1.0);
    EXPECT_NEAR(n2[1], 2.0 / 6.0, 1e-12);
}

TEST(NormalizeTest, ConstantInputTo01IsZero)
{
    const std::vector<double> v{3, 3, 3};
    for (double e : normalize01(v))
        EXPECT_EQ(e, 0.0);
}

TEST(ArgTest, ArgmaxArgmin)
{
    const std::vector<double> v{3, 9, 1, 9};
    EXPECT_EQ(argmax(v), 1u); // first max wins
    EXPECT_EQ(argmin(v), 2u);
}

TEST(NearlyEqualTest, RelativeTolerance)
{
    EXPECT_TRUE(nearlyEqual(1e9, 1e9 + 1, 1e-6));
    EXPECT_FALSE(nearlyEqual(1.0, 1.1, 1e-6));
    EXPECT_TRUE(nearlyEqual(0.0, 0.0));
}

/** Property: linearFit r2 is within [0, 1] for random data. */
class FitPropertyTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FitPropertyTest, R2Bounded)
{
    Rng rng(GetParam());
    std::vector<double> x, y;
    const int n = static_cast<int>(rng.uniformInt(2, 64));
    for (int i = 0; i < n; ++i) {
        x.push_back(rng.uniform(-100, 100));
        y.push_back(rng.uniform(-100, 100));
    }
    const LinearFit fit = linearFit(x, y);
    EXPECT_GE(fit.r2, 0.0);
    EXPECT_LE(fit.r2, 1.0 + 1e-12);
    EXPECT_TRUE(std::isfinite(fit.slope));
    EXPECT_TRUE(std::isfinite(fit.intercept));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FitPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));

} // namespace
} // namespace gpuscale
