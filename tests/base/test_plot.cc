/**
 * @file
 * Unit tests for ASCII figure rendering.
 */

#include "base/plot.hh"

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"

namespace gpuscale {
namespace {

TEST(LineChartTest, RendersTitleAxesAndLegend)
{
    LineChart chart("Scaling", "CUs", "speedup");
    chart.addSeries({"kernelA", {1, 2, 3, 4}, {1, 2, 3, 4}});
    chart.addSeries({"kernelB", {1, 2, 3, 4}, {1, 1, 1, 1}});

    const std::string out = chart.render();
    EXPECT_NE(out.find("Scaling"), std::string::npos);
    EXPECT_NE(out.find("x: CUs"), std::string::npos);
    EXPECT_NE(out.find("y: speedup"), std::string::npos);
    EXPECT_NE(out.find("*=kernelA"), std::string::npos);
    EXPECT_NE(out.find("o=kernelB"), std::string::npos);
    // Marker characters appear in the grid.
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(LineChartTest, SinglePointSeriesAndFlatData)
{
    LineChart chart("t", "x", "y");
    chart.addSeries({"s", {5}, {7}});
    EXPECT_NO_THROW(chart.render());

    LineChart flat("t", "x", "y");
    flat.addSeries({"s", {1, 2}, {3, 3}});
    EXPECT_NO_THROW(flat.render());
}

TEST(LineChartTest, CustomSize)
{
    LineChart chart("t", "x", "y");
    chart.setSize(20, 5);
    chart.addSeries({"s", {0, 1}, {0, 1}});
    const std::string out = chart.render();
    EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(BarChartTest, BarsScaleToMax)
{
    BarChart chart("Population");
    chart.setBarWidth(10);
    chart.addBar("big", 100.0);
    chart.addBar("half", 50.0);
    chart.addBar("zero", 0.0);

    const std::string out = chart.render();
    EXPECT_NE(out.find("##########"), std::string::npos);
    EXPECT_NE(out.find("#####"), std::string::npos);
    EXPECT_NE(out.find("zero"), std::string::npos);
    EXPECT_NE(out.find("100"), std::string::npos);
}

TEST(HeatmapTest, RendersGridWithScale)
{
    Heatmap hm("Plane", {"r0", "r1"}, {"c0", "c1", "c2"},
               {0, 1, 2, 3, 4, 5});
    const std::string out = hm.render();
    EXPECT_NE(out.find("Plane"), std::string::npos);
    EXPECT_NE(out.find("r0"), std::string::npos);
    EXPECT_NE(out.find("scale:"), std::string::npos);
    // Highest cell uses the densest ramp character.
    EXPECT_NE(out.find('@'), std::string::npos);
}

TEST(HeatmapTest, ConstantGridDoesNotDivideByZero)
{
    Heatmap hm("c", {"r"}, {"a", "b"}, {2.0, 2.0});
    EXPECT_NO_THROW(hm.render());
}

class PlotErrorTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogThrowOnTerminate(true); }
    void TearDown() override { setLogThrowOnTerminate(false); }
};

TEST_F(PlotErrorTest, MismatchedSeriesPanics)
{
    LineChart chart("t", "x", "y");
    EXPECT_THROW(chart.addSeries({"bad", {1, 2}, {1}}),
                 std::runtime_error);
}

TEST_F(PlotErrorTest, EmptyChartPanics)
{
    LineChart chart("t", "x", "y");
    EXPECT_THROW(chart.render(), std::runtime_error);
}

TEST_F(PlotErrorTest, NegativeBarPanics)
{
    BarChart chart("t");
    EXPECT_THROW(chart.addBar("neg", -1.0), std::runtime_error);
}

TEST_F(PlotErrorTest, HeatmapSizeMismatchPanics)
{
    EXPECT_THROW(Heatmap("t", {"r"}, {"c"}, {1.0, 2.0}),
                 std::runtime_error);
}

} // namespace
} // namespace gpuscale
