/**
 * @file
 * Fault-coverage rule tests: raw I/O outside a faultPoint() /
 * retryWithBackoff() envelope is flagged; probed scopes, the fault
 * machinery's own files, and allow()-carrying sites are not.
 */

#include <gtest/gtest.h>

#include "analysis_test_util.hh"

namespace {

using namespace gpuscale::analysis;
using namespace gpuscale::analysis::test;

TEST(RuleFaultCoverage, FlagsUnwrappedRename)
{
    const auto repo = loadFixture("fault_coverage_bad");
    const auto report = runRule(*makeFaultCoverageRule(), repo);

    // Exactly the seeded std::rename with no probe in scope.
    EXPECT_EQ(findingCount(report, "fault-coverage"), 1u)
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "rename"))
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "envelope"))
        << report.render();
    // The fix-it hint names the probe to add.
    ASSERT_EQ(report.findings().size(), 1u);
    EXPECT_NE(report.findings()[0].hint.find("faultPoint"),
              std::string::npos);
}

TEST(RuleFaultCoverage, FlagsUnprobedSocketPlane)
{
    // The service extension: accept and the recv/send pair outside a
    // probed scope are flagged; the probed twin and the
    // namespace-qualified connect wrapper stay silent.
    const auto repo = loadFixture("fault_coverage_socket_bad");
    const auto report = runRule(*makeFaultCoverageRule(), repo);

    EXPECT_EQ(findingCount(report, "fault-coverage"), 3u)
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "accept"))
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "recv"))
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "send"))
        << report.render();
    EXPECT_FALSE(anyMessageContains(report, "connect"))
        << report.render();
}

TEST(RuleFaultCoverage, ProbedScopesEnvelopeFilesAndAllowsAreSilent)
{
    // writer.cc covers its opens with faultPoint / retryWithBackoff
    // plus one allow(fault-coverage) slurp; fault.cc is the fault
    // machinery itself and may do raw I/O.
    const auto repo = loadFixture("fault_coverage_ok");
    const auto report = runRule(*makeFaultCoverageRule(), repo);
    EXPECT_EQ(report.findings().size(), 0u) << report.render();
    EXPECT_EQ(report.suppressedCount(), 1u);
}

} // namespace
