/**
 * @file
 * Token/scope engine tests: the shared lexer and brace classifier
 * every scope-sensitive rule builds on.  Exercises the corners that
 * historically break hand-rolled C++ lexers — raw strings, digit
 * separators, template '>>' closers — plus the scope-tree queries.
 */

#include <gtest/gtest.h>

#include "analysis/source_repo.hh"

namespace {

using namespace gpuscale::analysis;

SourceFile
make(const std::string &text)
{
    return SourceFile("src/base/x.cc", text);
}

std::vector<std::string>
tokenTexts(const SourceFile &f)
{
    std::vector<std::string> out;
    for (const auto &t : f.tokens().tokens())
        out.push_back(t.text);
    return out;
}

TEST(Tokens, LexesIdentifiersNumbersAndPuncts)
{
    const auto f = make("int x = a + 42;\n");
    const auto texts = tokenTexts(f);
    const std::vector<std::string> expect = {"int", "x", "=", "a",
                                             "+",   "42", ";"};
    EXPECT_EQ(texts, expect);
}

TEST(Tokens, DigitSeparatorsStayOneNumberToken)
{
    // 1'000'000 must lex as a single number; a naive scanner enters
    // char-literal state at the first quote and eats the rest of
    // the file.
    const auto f = make("size_t n = 1'000'000;\nint after = 2;\n");
    const auto texts = tokenTexts(f);
    ASSERT_GE(texts.size(), 8u);
    EXPECT_EQ(texts[3], "1'000'000");
    // The scanner kept lexing normally afterwards.
    EXPECT_EQ(texts[5], "int");
    EXPECT_EQ(texts[6], "after");
}

TEST(Tokens, CharLiteralsStillWork)
{
    const auto f = make("char c = 'a'; int next = 1;\n");
    const auto texts = tokenTexts(f);
    // The literal's contents are blanked but the token survives as
    // a char literal, and lexing continues past it.
    ASSERT_GE(texts.size(), 5u);
    EXPECT_EQ(texts[0], "char");
    EXPECT_EQ(texts[4], ";");
    EXPECT_EQ(texts[5], "int");
}

TEST(Tokens, RawStringsDoNotDisturbScopes)
{
    // The raw string contains braces, quotes, and a comment marker;
    // none of it may leak into tokens or scopes.
    const auto f = make("void f()\n"
                        "{\n"
                        "    const char *s = R\"({ \" // } )\";\n"
                        "    int x = 1;\n"
                        "}\n");
    ASSERT_EQ(f.scopes().scopes().size(), 1u);
    EXPECT_EQ(f.scopes().scopes()[0].kind, ScopeKind::Function);
    EXPECT_EQ(f.scopes().scopes()[0].name, "f");
    bool saw_x = false;
    for (const auto &t : f.tokens().tokens())
        saw_x = saw_x || t.text == "x";
    EXPECT_TRUE(saw_x);
}

TEST(Tokens, TemplateDoubleCloserSplitsFromShift)
{
    const auto f =
        make("std::vector<std::vector<int>> xs;\nint y = a >> b;\n");
    size_t shifts = 0;
    for (const auto &t : f.tokens().tokens())
        shifts += t.text == ">>" ? 1 : 0;
    // Both the template closer and the genuine shift lex as '>>';
    // what matters is the scanner doesn't lose its place: the
    // trailing statement is intact.
    EXPECT_EQ(shifts, 2u);
    const auto texts = tokenTexts(f);
    EXPECT_EQ(texts.back(), ";");
}

TEST(Tokens, MatchPairsBrackets)
{
    const auto f = make("int f(int a) { return g(a, h(a)); }\n");
    const auto &ts = f.tokens();
    const auto &toks = ts.tokens();
    // First '(' belongs to f's parameter list.
    size_t open = 0;
    while (toks[open].text != "(")
        ++open;
    const size_t close = ts.match(open);
    ASSERT_NE(close, TokenStream::npos);
    EXPECT_EQ(toks[close].text, ")");
    EXPECT_EQ(toks[close + 1].text, "{");
}

TEST(Scopes, ClassifiesNestingAndNames)
{
    const auto f = make("namespace ns {\n"
                        "class Widget\n"
                        "{\n"
                        "  public:\n"
                        "    void spin(int n)\n"
                        "    {\n"
                        "        if (n > 0) {\n"
                        "            while (n--) {\n"
                        "            }\n"
                        "        }\n"
                        "    }\n"
                        "};\n"
                        "} // namespace ns\n");
    const auto &scopes = f.scopes().scopes();
    ASSERT_EQ(scopes.size(), 5u);
    EXPECT_EQ(scopes[0].kind, ScopeKind::Namespace);
    EXPECT_EQ(scopes[1].kind, ScopeKind::Type);
    EXPECT_EQ(scopes[2].kind, ScopeKind::Function);
    EXPECT_EQ(scopes[2].name, "spin");
    // if and while each open their own Control scope.
    EXPECT_EQ(scopes[3].kind, ScopeKind::Control);
    EXPECT_EQ(scopes[3].parent, 2);
    EXPECT_EQ(scopes[3].depth, 3);
    EXPECT_EQ(scopes[4].kind, ScopeKind::Control);
    EXPECT_EQ(scopes[4].parent, 3);
    EXPECT_EQ(scopes[4].depth, 4);
}

TEST(Scopes, InnermostAndEnclosingFunctionQueries)
{
    const std::string text = "void outer()\n"
                             "{\n"
                             "    auto fn = [&]() {\n"
                             "        int deep = 1;\n"
                             "    };\n"
                             "}\n";
    const auto f = make(text);
    const size_t deep = text.find("deep");
    ASSERT_NE(deep, std::string::npos);

    const int inner = f.scopes().innermostAt(deep);
    ASSERT_GE(inner, 0);
    EXPECT_EQ(f.scopes().scopes()[inner].kind, ScopeKind::Function);

    // enclosingFunction finds the lambda; outermostFunction walks up
    // to outer() — the distinction fault-coverage depends on.
    const int enclosing = f.scopes().enclosingFunction(deep);
    EXPECT_EQ(enclosing, inner);
    const int outermost = f.scopes().outermostFunction(deep);
    ASSERT_GE(outermost, 0);
    EXPECT_EQ(f.scopes().scopes()[outermost].name, "outer");
    EXPECT_TRUE(f.scopes().isAncestorOrSelf(outermost, inner));
    EXPECT_FALSE(f.scopes().isAncestorOrSelf(inner, outermost));
}

TEST(Scopes, InitializerBracesAreNotControlFlow)
{
    const auto f = make("int xs[] = {1, 2, 3};\n"
                        "void f()\n"
                        "{\n"
                        "    std::vector<int> v = {4, 5};\n"
                        "}\n");
    size_t functions = 0;
    size_t inits = 0;
    for (const auto &s : f.scopes().scopes()) {
        functions += s.kind == ScopeKind::Function ? 1 : 0;
        inits += s.kind == ScopeKind::Init ? 1 : 0;
    }
    EXPECT_EQ(functions, 1u);
    EXPECT_EQ(inits, 2u);
}

TEST(Scopes, GuardAnnotationsResolveFields)
{
    const auto f = make("class C\n"
                        "{\n"
                        "    std::mutex mu_;\n"
                        "    // guarded_by(mu_)\n"
                        "    int standalone_ = 0;\n"
                        "    int trailing_ = 0; // guarded_by(mu_)\n"
                        "};\n");
    const auto &guards = f.guardAnnotations();
    ASSERT_EQ(guards.size(), 2u);
    EXPECT_EQ(guards[0].field, "standalone_");
    EXPECT_EQ(guards[0].mutex, "mu_");
    EXPECT_EQ(guards[1].field, "trailing_");
    EXPECT_EQ(guards[1].mutex, "mu_");
}

} // namespace
