/**
 * @file
 * Instrument-description rule tests: registrations through the
 * registry's counter/gauge/histogram methods (plain and sharded) must
 * carry a non-empty description literal; computed descriptions and
 * allow() suppressions are respected.
 */

#include <gtest/gtest.h>

#include "analysis_test_util.hh"

namespace {

using namespace gpuscale::analysis;
using namespace gpuscale::analysis::test;

TEST(RuleDescription, FlagsMissingAndEmptyDescriptions)
{
    const auto repo = loadFixture("description_bad");
    const auto report = runRule(*makeDescriptionRule(), repo);

    // counter("bare.counter"), gauge("empty.gauge", ""), and
    // shardedCounter("bare.sharded") — while the described, the
    // concatenated, the computed, and the suppressed registrations
    // stay silent.
    EXPECT_EQ(findingCount(report, "description"), 3u)
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "bare.counter"))
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "empty.gauge"))
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "bare.sharded"))
        << report.render();
    EXPECT_FALSE(anyMessageContains(report, "good.hist"));
    EXPECT_FALSE(anyMessageContains(report, "concat.hist"));
    EXPECT_FALSE(anyMessageContains(report, "computed.desc"));

    // The legacy registration is suppressed, not silently dropped.
    EXPECT_FALSE(anyMessageContains(report, "legacy.counter"));
    EXPECT_EQ(report.suppressedCount(), 1u);
}

TEST(RuleDescription, RealRepoInstrumentsAreAllDescribed)
{
    const auto repo = loadRepo(requiredEnv("GPUSCALE_REPO_ROOT"));
    const auto report = runRule(*makeDescriptionRule(), repo);
    EXPECT_EQ(findingCount(report, "description"), 0u)
        << report.render();
}

} // namespace
