/**
 * @file
 * Concurrency-hygiene rule tests: raw thread primitives outside the
 * harness pool are flagged; queries, lock guards, and explicitly
 * allowed sites are not.
 */

#include <gtest/gtest.h>

#include "analysis_test_util.hh"

namespace {

using namespace gpuscale::analysis;
using namespace gpuscale::analysis::test;

TEST(RuleConcurrency, FlagsThreadDetachAndMutexOutsideHarness)
{
    const auto repo = loadFixture("concurrency_bad");
    const auto report = runRule(*makeConcurrencyRule(), repo);

    // std::thread construction, .detach(), and the std::mutex
    // declaration — and nothing else.  hardware_concurrency() and
    // lock_guard<std::mutex> in the same file must stay silent.
    EXPECT_EQ(findingCount(report, "concurrency"), 3u)
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "std::thread"))
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "detach"))
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "mutex"))
        << report.render();
}

TEST(RuleConcurrency, AllowCommentsSilenceButAreTallied)
{
    const auto repo = loadFixture("concurrency_suppressed");
    const auto report = runRule(*makeConcurrencyRule(), repo);
    EXPECT_EQ(report.findings().size(), 0u) << report.render();
    EXPECT_EQ(report.suppressedCount(), 2u);
    const auto it = report.suppressedByRule().find("concurrency");
    ASSERT_NE(it, report.suppressedByRule().end());
    EXPECT_EQ(it->second, 2u);
}

} // namespace
