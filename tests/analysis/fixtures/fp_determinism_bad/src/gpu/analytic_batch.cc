// Fixture: a helper used by both census paths but defined here, in
// a .cc — the shared-helper contract violation.

static double
occupancyTerm(double f)
{
    return f / 3.0;
}

double
batchKernel(double f)
{
    return occupancyTerm(f) + 1.0;
}
