// Fixture: the scalar census path calling a helper that is defined
// privately in the batched TU (analytic_batch.cc).

double occupancyTerm(double f);

double
modelKernel(double f)
{
    return occupancyTerm(f) * 2.0;
}
