// Fixture: reassociation-prone float patterns the fp-determinism
// rule must flag.

#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

double
sumRuntimes(const std::vector<double> &xs)
{
    // Seeded violation: reassociated accumulate over doubles.
    return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double
tallyByKernel(const std::unordered_map<std::string, double> &m)
{
    double total = 0.0;
    for (const auto &kv : m)
        total += kv.second;
    return total;
}
