// Fixture: helper shared by both paths but declared in the TU's own
// header — a published API, not a private copy.

#include "gpu/analytic_batch.hh"

double
occupancyTerm(double f)
{
    return f / 3.0;
}

double
batchKernel(double f)
{
    return occupancyTerm(f) + 1.0;
}
