// Fixture: scalar path using the header-declared shared helper and
// iterating an *ordered* map — all silent.

#include <map>
#include <string>

#include "gpu/analytic_batch.hh"

double
modelKernel(double f)
{
    return occupancyTerm(f) * 2.0;
}

double
tallyOrdered(const std::map<std::string, double> &m)
{
    double total = 0.0;
    for (const auto &kv : m)
        total += kv.second;
    return total;
}
