// Fixture: the shared header where a helper used by both census
// paths is allowed to live.

#ifndef FIXTURE_ANALYTIC_BATCH_HH
#define FIXTURE_ANALYTIC_BATCH_HH

double occupancyTerm(double f);
double batchKernel(double f);

#endif
