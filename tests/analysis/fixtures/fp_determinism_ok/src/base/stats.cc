// Fixture: blessed helper file — ordered reductions live here by
// design, so the fp-determinism rule must stay silent.

#include <numeric>
#include <vector>

double
orderedSum(const std::vector<double> &xs)
{
    return std::accumulate(xs.begin(), xs.end(), 0.0);
}
