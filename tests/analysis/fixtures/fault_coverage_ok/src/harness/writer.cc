// Fixture: every I/O form the fault-coverage rule accepts — probed,
// retried, explicitly allowed, or deferred to a covered scope.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "base/fault.hh"
#include "obs/retry.hh"

bool
persist(const char *from, const char *to)
{
    if (gpuscale::faultPoint("writer.rename"))
        return false;
    return std::rename(from, to) == 0;
}

bool
spill(const std::string &path, const std::string &data)
{
    // A lambda inside a covered function is covered too: the probe
    // lives in the outermost enclosing function.
    return gpuscale::obs::retryWithBackoff("writer.spill", [&]() {
        std::ofstream os(path);
        os << data;
        return static_cast<bool>(os);
    });
}

std::string
slurp(const char *path)
{
    // gpuscale-lint: allow(fault-coverage): best-effort reader used
    // by diagnostics only.
    std::ifstream is(path);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}
