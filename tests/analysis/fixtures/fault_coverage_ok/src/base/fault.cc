// Fixture: the envelope itself is exempt — raw I/O here is how
// faults get modelled in the first place.

#include <cstdio>

bool
probeDisk(const char *path)
{
    std::FILE *f = std::fopen(path, "rb");
    if (f == nullptr)
        return false;
    std::fclose(f);
    return true;
}
