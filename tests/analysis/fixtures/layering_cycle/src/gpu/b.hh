/** Fixture: the other half of the include cycle. */
#include "a.hh"
struct B { A *a; };
