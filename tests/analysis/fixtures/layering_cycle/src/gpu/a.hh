/** Fixture: half of an include cycle. */
#include "b.hh"
struct A { B *b; };
