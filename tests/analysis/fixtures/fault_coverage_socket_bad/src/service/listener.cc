// Fixture: service-plane socket I/O for the extended fault-coverage
// rule.  The bare accept and the raw recv/send pair must be flagged;
// the probed twin and the namespace-qualified wrapper call (the
// wrapper, not the POSIX free function) must stay silent.

#include <cstddef>

#include "base/fault.hh"

// Flagged: an accept loop with no probe in scope is a connection
// path crash tests can never reach.
int
acceptOne(int listen_fd)
{
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    return fd;
}

// Flagged twice: raw recv and send with no probe in scope.
bool
echo(int fd)
{
    char buf[64];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0)
        return false;
    const ssize_t m = ::send(fd, buf, static_cast<size_t>(n), 0);
    return m == n;
}

// Silent: the same calls inside a probed scope.
bool
echoProbed(int fd)
{
    if (faultPoint("service.conn.read"))
        return false;
    char buf[64];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0)
        return false;
    const ssize_t m = ::send(fd, buf, static_cast<size_t>(n), 0);
    return m == n;
}

// Silent: a qualified connect is the wrapper, never the raw POSIX
// free function.
bool
viaWrapper(int fd)
{
    const bool up = net::connect(fd);
    return up;
}
