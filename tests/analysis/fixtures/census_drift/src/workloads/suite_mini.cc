/**
 * @file
 * Fixture suite: 2 programs, 4 kernels.
 *
 * The header claims one kernel more than the file registers, so both
 * the per-file claim check and the repo total drift check fire.
 */

void
makeMiniSuite()
{
    auto a = Program("mini", "alpha")
        .add(streaming("k1"))
        .add(streaming("k2"));
    auto b = Program("mini", "beta")
        .add(reduction("k3"));
}
