/** Fixture: a base-layer header with no dependencies. */
#ifndef FIXTURE_BASE_UTIL_HH
#define FIXTURE_BASE_UTIL_HH
int answer();
#endif
