/** Fixture: gpu may include base — downward is fine. */
#ifndef FIXTURE_GPU_MODEL_HH
#define FIXTURE_GPU_MODEL_HH
#include "base/util.hh"
int estimate();
#endif
