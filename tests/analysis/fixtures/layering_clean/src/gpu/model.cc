/** Fixture: local include resolves next to the includer. */
#include "model.hh"
int estimate() { return answer(); }
