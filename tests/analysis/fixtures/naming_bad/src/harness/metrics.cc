/** Fixture: telemetry keys that break the naming convention. */
#include <map>
#include <string>

#define GPUSCALE_TRACE_SCOPE(name) void(name)

struct Registry {
    static Registry &instance();
    int &counter(const std::string &name);
    int &gauge(const std::string &name);
    int &shardedCounter(const std::string &name);
    int &shardedHistogram(const std::string &name);
};

struct Manifest {
    std::map<std::string, std::string> extra;
};

void
record(Manifest &manifest)
{
    Registry::instance().counter("Sweep.Estimates");
    Registry::instance().gauge("sweep.ok_name");
    Registry::instance().shardedCounter("Sharded.Bad");
    Registry::instance().shardedHistogram("sweep.sharded.ok");
    GPUSCALE_TRACE_SCOPE("BadSpan");
    GPUSCALE_TRACE_SCOPE("sweep/");
    manifest.extra["Bad-Key"] = "x";
    manifest.extra["noise_sigma"] = "y";
}
