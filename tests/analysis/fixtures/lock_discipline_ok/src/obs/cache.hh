// Fixture: every accepted touch form — under a lock_guard, inside a
// *Locked helper, and via a unique_lock in an outer scope.

#ifndef FIXTURE_CACHE_HH
#define FIXTURE_CACHE_HH

#include <mutex>

class Cache
{
  public:
    void put(int v);
    int waitNonZero();
    int getLocked() const;

  private:
    mutable std::mutex mu_;
    // guarded_by(mu_)
    int value_ = 0;
};

#endif
