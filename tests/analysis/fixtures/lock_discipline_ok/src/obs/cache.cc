#include "obs/cache.hh"

void
Cache::put(int v)
{
    std::lock_guard<std::mutex> lock(mu_);
    value_ = v;
}

int
Cache::waitNonZero()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (value_ == 0) {
        // The lock in the enclosing scope covers nested blocks.
        value_ += 0;
    }
    return value_;
}

int
Cache::getLocked() const
{
    return value_;
}
