/** Fixture: error codes handed to filesystem calls and dropped. */
#include <filesystem>
#include <string>
#include <system_error>

void
makeDir(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    // ec is never looked at again: the failure vanishes.
}

void
dropFile(const std::string &path)
{
    std::error_code rc;
    std::filesystem::remove(path, rc);
}

// A comment mentioning std::error_code cmt; must not count.
