/** Fixture: every declared error code is inspected (or allowed). */
#include <filesystem>
#include <string>
#include <system_error>

void fatal_if(bool cond, const char *fmt, ...);

void
makeDir(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    fatal_if(ec, "cannot create %s", dir.c_str());
}

bool
probe(const std::string &path)
{
    std::error_code probe_ec;
    const bool exists = std::filesystem::exists(path, probe_ec);
    if (probe_ec)
        return false;
    return exists;
}

std::string
describe(const std::string &path)
{
    std::error_code msg_ec;
    std::filesystem::file_size(path, msg_ec);
    return msg_ec.message();
}

bool
negated(const std::string &path)
{
    std::error_code neg_ec;
    std::filesystem::remove(path, neg_ec);
    return !neg_ec;
}

std::error_code
forwarded(const std::string &path)
{
    std::error_code fwd_ec;
    std::filesystem::remove(path, fwd_ec);
    return fwd_ec;
}

// A reference out-parameter is the caller's value, not a finding.
void
outParam(const std::string &path, std::error_code &out)
{
    std::filesystem::remove(path, out);
}

void
bestEffortCleanup(const std::string &tmp)
{
    // gpuscale-lint: allow(error-code): fire-and-forget temp cleanup
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
}
