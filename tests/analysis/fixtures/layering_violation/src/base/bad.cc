/** Fixture: base reaching up into harness breaks the layer order. */
#include "harness/sweep.hh"
void helper() { sweep(); }
