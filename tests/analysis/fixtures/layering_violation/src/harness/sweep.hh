/** Fixture: a harness-layer header for base to (wrongly) include. */
#ifndef FIXTURE_HARNESS_SWEEP_HH
#define FIXTURE_HARNESS_SWEEP_HH
void sweep();
#endif
