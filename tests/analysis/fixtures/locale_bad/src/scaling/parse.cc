/** Fixture: locale-dependent parsing and formatting. */
#include <cstdlib>
#include <string>

std::string strprintf(const char *fmt, ...);

double
parseField(const std::string &field)
{
    return std::atof(field.c_str());
}

double
parseOther(const char *s)
{
    return strtod(s, nullptr);
}

std::string
renderSigma(double sigma)
{
    return strprintf("%g", sigma);
}

std::string
okFixed(double v)
{
    // %f feeds a human-facing table, not a serialized file: allowed.
    return strprintf("%.2f", v);
}

// A comment mentioning atof( and strprintf("%g") must not count.
