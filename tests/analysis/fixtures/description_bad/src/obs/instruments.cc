/** Fixture: instrument registrations with and without descriptions. */
#include <string>

struct Registry {
    static Registry &instance();
    int &counter(const std::string &name,
                 const std::string &desc = "");
    int &gauge(const std::string &name,
               const std::string &desc = "");
    int &histogram(const std::string &name,
                   const std::string &desc = "");
    int &shardedCounter(const std::string &name,
                        const std::string &desc = "");
    int &shardedHistogram(const std::string &name,
                          const std::string &desc = "");
};

void
registerInstruments(const std::string &runtime_desc)
{
    // Flagged: no description argument at all.
    Registry::instance().counter("bare.counter");
    // Flagged: a description that says nothing.
    Registry::instance().gauge("empty.gauge", "");
    // Flagged: the sharded variants obey the same contract.
    Registry::instance().shardedCounter("bare.sharded");

    // Fine: a real description.
    Registry::instance().histogram("good.hist",
                                   "seconds per journal flush");
    // Fine: adjacent-literal concatenation is one description.
    Registry::instance().shardedHistogram("concat.hist",
                                          "seconds per "
                                          "model estimate");
    // Fine: a computed description is out of the rule's reach.
    Registry::instance().counter("computed.desc", runtime_desc);
    // gpuscale-lint: allow(description): legacy key pending rename
    Registry::instance().counter("legacy.counter");
}
