/** Fixture: a documented, suppressed mutex produces no finding. */
#include <mutex>

// gpuscale-lint: allow(concurrency): fixture exercising the
// suppression syntax across a wrapped comment block.
std::mutex g_guarded_mu;

std::mutex g_trailing_mu; // gpuscale-lint: allow(concurrency): same line
