// Fixture: an annotated field whose .cc touches it without the
// lock — the seeded unguarded-touch the rule must flag.

#ifndef FIXTURE_CACHE_HH
#define FIXTURE_CACHE_HH

#include <mutex>

class Cache
{
  public:
    void put(int v);
    int getLocked() const;

  private:
    mutable std::mutex mu_;
    // guarded_by(mu_)
    int value_ = 0;
};

#endif
