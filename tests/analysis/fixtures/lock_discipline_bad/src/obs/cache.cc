#include "obs/cache.hh"

void
Cache::put(int v)
{
    value_ = v;
}

int
Cache::getLocked() const
{
    return value_;
}
