/**
 * @file
 * Fixture suite: 2 programs, 3 kernels.
 */

void
makeMiniSuite()
{
    // The census rule counts Program( constructions and .add( calls.
    auto a = Program("mini", "alpha")
        .add(streaming("k1"))
        .add(streaming("k2"));
    auto b = Program("mini", "beta")
        .add(reduction("k3"));
}
