// Fixture: one raw I/O call outside the fault/retry envelope — the
// seeded unwrapped rename the fault-coverage rule must flag.

#include <cstdio>

bool
persist(const char *from, const char *to)
{
    return std::rename(from, to) == 0;
}
