// Fixture: broken guarded_by annotations — a truncated marker and
// one naming a mutex that does not exist in the file.

#ifndef FIXTURE_CACHE_HH
#define FIXTURE_CACHE_HH

#include <mutex>

class Cache
{
  private:
    mutable std::mutex mu_;
    // guarded_by(
    int value_ = 0;
    // guarded_by(nonexistent_mu_)
    int other_ = 0;
};

#endif
