/** Fixture: every concurrency sin outside the harness pool. */
#include <mutex>
#include <thread>

std::mutex g_mu;

void
spawnWorker()
{
    std::thread worker([] {});
    worker.detach();
}

unsigned
okQuery()
{
    // A capacity query, not a spawn: must NOT be flagged.
    return std::thread::hardware_concurrency();
}

void
okUse()
{
    // Using a mutex via a guard is fine; declaring one is not.
    std::lock_guard<std::mutex> lock(g_mu);
}
