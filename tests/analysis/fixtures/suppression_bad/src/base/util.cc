// Fixture: broken allow() markers the suppression rule must flag.

// gpuscale-lint: allow(locl): typo'd rule name suppresses nothing
static int
localeish()
{
    return 1;
}

// gpuscale-lint: this marker has no allow() clause at all
static int
unparseable()
{
    return 2;
}

// gpuscale-lint: allow(layering): a real rule name stays silent
static int
fine()
{
    return 3;
}
