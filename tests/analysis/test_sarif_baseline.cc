/**
 * @file
 * SARIF renderer and baseline machinery tests.  The SARIF document
 * is parsed back with obs::parseJson and checked against the 2.1.0
 * shape GitHub code scanning requires; the baseline tests pin the
 * key format, comment handling, and --diff semantics.
 */

#include <gtest/gtest.h>

#include "analysis/baseline.hh"
#include "analysis/findings.hh"
#include "analysis/sarif.hh"
#include "obs/json.hh"

namespace {

using namespace gpuscale::analysis;
using gpuscale::obs::JsonValue;
using gpuscale::obs::parseJson;

Finding
mkFinding(const std::string &rule, const std::string &file, int line,
          const std::string &message, Severity sev = Severity::Error,
          const std::string &hint = "")
{
    Finding f;
    f.rule = rule;
    f.severity = sev;
    f.file = file;
    f.line = line;
    f.message = message;
    f.hint = hint;
    return f;
}

std::vector<Finding>
sampleFindings()
{
    return {
        mkFinding("fp-determinism", "src/gpu/model.cc", 42,
                  "std::accumulate over doubles", Severity::Error,
                  "use stats::kahanSum"),
        mkFinding("naming", "src/base/util.hh", 7, "camelCase field",
                  Severity::Warning),
        // Repo-wide finding: no file, no line.
        mkFinding("census", "", 0, "expected 12 workloads, found 11"),
    };
}

std::vector<SarifRuleInfo>
sampleRules()
{
    return {{"fp-determinism", "floating-point determinism hazards"},
            {"naming", "identifier conventions"},
            {"census", "workload census totals"}};
}

TEST(Sarif, DocumentHasTheRequired210Shape)
{
    const auto doc =
        parseJson(renderSarif(sampleFindings(), sampleRules()));
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("version").str, "2.1.0");
    EXPECT_NE(doc.at("$schema").str.find("sarif-2.1.0"),
              std::string::npos);

    const auto &runs = doc.at("runs");
    ASSERT_TRUE(runs.isArray());
    ASSERT_EQ(runs.array.size(), 1u);
    const auto &driver = runs.array[0].at("tool").at("driver");
    EXPECT_EQ(driver.at("name").str, "gpuscale-lint");
    EXPECT_TRUE(driver.find("informationUri") != nullptr);

    // Every registered rule appears in driver metadata even when it
    // produced no findings.
    const auto &rules = driver.at("rules");
    ASSERT_TRUE(rules.isArray());
    ASSERT_EQ(rules.array.size(), 3u);
    EXPECT_EQ(rules.array[0].at("id").str, "fp-determinism");
    EXPECT_FALSE(rules.array[0]
                     .at("shortDescription")
                     .at("text")
                     .str.empty());
}

TEST(Sarif, ResultsCarryLocationLevelAndHint)
{
    const auto doc =
        parseJson(renderSarif(sampleFindings(), sampleRules()));
    const auto &results = doc.at("runs").array[0].at("results");
    ASSERT_TRUE(results.isArray());
    ASSERT_EQ(results.array.size(), 3u);

    const auto &first = results.array[0];
    EXPECT_EQ(first.at("ruleId").str, "fp-determinism");
    EXPECT_EQ(first.at("level").str, "error");
    EXPECT_EQ(first.at("message").at("text").str,
              "std::accumulate over doubles");
    const auto &loc =
        first.at("locations").array.at(0).at("physicalLocation");
    EXPECT_EQ(loc.at("artifactLocation").at("uri").str,
              "src/gpu/model.cc");
    EXPECT_EQ(loc.at("region").at("startLine").number, 42.0);
    EXPECT_EQ(first.at("properties").at("hint").str,
              "use stats::kahanSum");

    EXPECT_EQ(results.array[1].at("level").str, "warning");

    // Repo-wide findings must omit locations entirely — an empty
    // uri is invalid SARIF.
    EXPECT_EQ(results.array[2].find("locations"), nullptr);
}

TEST(Baseline, KeyIsLineAgnostic)
{
    auto a = mkFinding("naming", "src/x.cc", 10, "bad name");
    auto b = a;
    b.line = 99;
    EXPECT_EQ(baselineKey(a), baselineKey(b));
    EXPECT_EQ(baselineKey(a), "naming|src/x.cc|bad name");
}

TEST(Baseline, RenderParseRoundTripsAndDedupes)
{
    std::vector<Finding> fs = {
        mkFinding("naming", "src/x.cc", 10, "bad name"),
        mkFinding("naming", "src/x.cc", 20, "bad name"), // same key
        mkFinding("layering", "src/y.cc", 3, "skips a tier"),
    };
    const auto text = renderBaseline(fs);
    const auto keys = parseBaseline(text);
    EXPECT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys.count("naming|src/x.cc|bad name"), 1u);
    EXPECT_EQ(keys.count("layering|src/y.cc|skips a tier"), 1u);
}

TEST(Baseline, ParserSkipsCommentsBlanksAndCrlf)
{
    const auto keys = parseBaseline("# header\n"
                                    "\n"
                                    "naming|src/x.cc|bad name\r\n"
                                    "  \n"
                                    "# trailing comment\n");
    EXPECT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys.count("naming|src/x.cc|bad name"), 1u);
}

TEST(Baseline, DiffReportsOnlyFindingsAbsentFromBaseline)
{
    std::vector<Finding> fs = {
        mkFinding("naming", "src/x.cc", 10, "bad name"),
        mkFinding("layering", "src/y.cc", 3, "skips a tier"),
    };
    const auto baseline = parseBaseline(renderBaseline(
        std::vector<Finding>{fs[0]})); // only the naming finding

    const auto fresh = diffAgainstBaseline(fs, baseline);
    ASSERT_EQ(fresh.size(), 1u);
    EXPECT_EQ(fresh[0].rule, "layering");

    // A moved-but-otherwise-identical finding stays baselined.
    auto moved = fs[0];
    moved.line = 55;
    EXPECT_TRUE(
        diffAgainstBaseline({moved}, baseline).empty());
}

} // namespace
