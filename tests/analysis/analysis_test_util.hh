/**
 * @file
 * Shared helpers for the gpuscale-lint test suite.
 *
 * Fixture repos live under tests/analysis/fixtures/<case>/ — each is
 * a miniature checkout with its own src/ tree.  CTest exports the
 * fixtures directory as GPUSCALE_ANALYSIS_FIXTURES and the real
 * checkout as GPUSCALE_REPO_ROOT (see tests/CMakeLists.txt); running
 * a test binary by hand needs both set the same way.
 */

#ifndef GPUSCALE_TESTS_ANALYSIS_TEST_UTIL_HH
#define GPUSCALE_TESTS_ANALYSIS_TEST_UTIL_HH

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "analysis/findings.hh"
#include "analysis/rules.hh"
#include "analysis/source_repo.hh"

namespace gpuscale {
namespace analysis {
namespace test {

/** Value of a required environment variable; fails the test if unset. */
inline std::string
requiredEnv(const char *name)
{
    const char *value = std::getenv(name);
    EXPECT_NE(value, nullptr)
        << name << " must be set (ctest exports it; for manual runs "
        << "point it at the checkout / tests/analysis/fixtures)";
    return value ? value : "";
}

/** Load one fixture repo by its directory name. */
inline SourceRepo
loadFixture(const std::string &case_name)
{
    return loadRepo(requiredEnv("GPUSCALE_ANALYSIS_FIXTURES") + "/" +
                    case_name);
}

/** Run a single rule over a repo with default options. */
inline Report
runRule(const Rule &rule, const SourceRepo &repo,
        const LintOptions &opts = {})
{
    Report report;
    rule.run(repo, opts, report);
    return report;
}

/** Count findings attributed to the given rule name. */
inline size_t
findingCount(const Report &report, const std::string &rule)
{
    size_t n = 0;
    for (const auto &f : report.findings())
        n += f.rule == rule ? 1 : 0;
    return n;
}

/** True if any finding's message contains the given needle. */
inline bool
anyMessageContains(const Report &report, const std::string &needle)
{
    for (const auto &f : report.findings()) {
        if (f.message.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace test
} // namespace analysis
} // namespace gpuscale

#endif // GPUSCALE_TESTS_ANALYSIS_TEST_UTIL_HH
