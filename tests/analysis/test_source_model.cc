/**
 * @file
 * SourceFile scanner tests: comment stripping, literal capture,
 * suppression parsing, and line mapping — the foundation every rule
 * stands on.
 */

#include <gtest/gtest.h>

#include "analysis/source_repo.hh"

namespace {

using gpuscale::analysis::SourceFile;

TEST(SourceModel, CommentsAreBlankedButLinesSurvive)
{
    const SourceFile f("src/base/x.cc",
                       "int a; // std::thread in a comment\n"
                       "/* std::mutex\n   spans lines */ int b;\n");
    EXPECT_EQ(f.code().find("std::thread"), std::string::npos);
    EXPECT_EQ(f.code().find("std::mutex"), std::string::npos);
    EXPECT_NE(f.code().find("int a;"), std::string::npos);
    EXPECT_NE(f.code().find("int b;"), std::string::npos);
    // Offsets are stable: "int b;" sits after the two-line block
    // comment, so it still maps to line 3.
    EXPECT_EQ(f.lineOf(f.code().find("int b;")), 3);
}

TEST(SourceModel, LiteralContentsAreBlankedAndCaptured)
{
    const SourceFile f("src/base/x.cc",
                       "const char *s = \"std::thread inside\";\n");
    EXPECT_EQ(f.code().find("std::thread"), std::string::npos);
    ASSERT_EQ(f.literals().size(), 1u);
    EXPECT_EQ(f.literals()[0].text, "std::thread inside");
    EXPECT_EQ(f.literals()[0].line, 1);
}

TEST(SourceModel, EscapedQuotesStayInsideTheLiteral)
{
    const SourceFile f("src/base/x.cc",
                       "const char *s = \"a\\\"b\"; int after;\n");
    ASSERT_EQ(f.literals().size(), 1u);
    EXPECT_EQ(f.literals()[0].text, "a\\\"b");
    EXPECT_NE(f.code().find("int after;"), std::string::npos);
}

TEST(SourceModel, RawStringsAreCaptured)
{
    const SourceFile f("src/base/x.cc",
                       "auto s = R\"(line\")\";\nint after;\n");
    ASSERT_EQ(f.literals().size(), 1u);
    EXPECT_EQ(f.literals()[0].text, "line\"");
    EXPECT_NE(f.code().find("int after;"), std::string::npos);
}

TEST(SourceModel, TrailingSuppressionCoversItsOwnLine)
{
    const SourceFile f(
        "src/base/x.cc",
        "int a; // gpuscale-lint: allow(concurrency): reason\n");
    EXPECT_TRUE(f.suppressed(1, "concurrency"));
    EXPECT_FALSE(f.suppressed(1, "locale"));
}

TEST(SourceModel, StandaloneSuppressionCoversTheNextLine)
{
    const SourceFile f(
        "src/base/x.cc",
        "// gpuscale-lint: allow(locale): reason\n"
        "double d = atof(s);\n");
    EXPECT_TRUE(f.suppressed(2, "locale"));
}

TEST(SourceModel, WrappedCommentBlockStillReachesTheNextLine)
{
    // The marker sits on the first line of a three-line comment; the
    // statement below the block must still be covered.
    const SourceFile f(
        "src/base/x.cc",
        "// gpuscale-lint: allow(concurrency): a long reason that\n"
        "// wraps onto a second comment line and then\n"
        "// a third one\n"
        "std::mutex mu;\n");
    EXPECT_TRUE(f.suppressed(4, "concurrency"));
}

TEST(SourceModel, MultipleRulesInOneAllow)
{
    const SourceFile f(
        "src/base/x.cc",
        "// gpuscale-lint: allow(locale, naming)\n"
        "int x;\n");
    EXPECT_TRUE(f.suppressed(2, "locale"));
    EXPECT_TRUE(f.suppressed(2, "naming"));
    EXPECT_FALSE(f.suppressed(2, "concurrency"));
}

TEST(SourceModel, LayerComesFromTheFirstDirUnderSrc)
{
    EXPECT_EQ(SourceFile("src/gpu/timing/resource.cc", "").layer(),
              "gpu");
    EXPECT_EQ(SourceFile("src/base/csv.hh", "").layer(), "base");
    EXPECT_EQ(SourceFile("tests/base/test_csv.cc", "").layer(), "");
}

} // namespace
