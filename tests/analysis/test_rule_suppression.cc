/**
 * @file
 * Suppression-hygiene rule tests: allow() markers naming unknown
 * rules and unparseable gpuscale-lint markers are findings, so a
 * typo'd suppression cannot silently stop suppressing.
 */

#include <gtest/gtest.h>

#include "analysis_test_util.hh"

namespace {

using namespace gpuscale::analysis;
using namespace gpuscale::analysis::test;

TEST(RuleSuppression, FlagsUnknownRuleNamesAndMalformedMarkers)
{
    const auto repo = loadFixture("suppression_bad");
    const auto report = runRule(*makeSuppressionRule(), repo);

    // allow(locl) names no rule; the clause-free marker is
    // malformed; allow(layering) is real and stays silent.
    EXPECT_EQ(findingCount(report, "suppression"), 2u)
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "locl"))
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "malformed"))
        << report.render();
    EXPECT_FALSE(anyMessageContains(report, "layering"))
        << report.render();
}

TEST(RuleSuppression, KnownRulesOverrideChangesTheVerdict)
{
    // With 'locl' force-registered via LintOptions the typo'd allow
    // becomes valid, leaving only the malformed marker.
    const auto repo = loadFixture("suppression_bad");
    LintOptions opts;
    opts.known_rules = {"locl", "layering"};
    const auto report = runRule(*makeSuppressionRule(), repo, opts);
    EXPECT_EQ(findingCount(report, "suppression"), 1u)
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "malformed"))
        << report.render();
}

} // namespace
