/**
 * @file
 * Locale-safety rule tests: locale-dependent parsers and %g-family
 * formatting are flagged; %f tables and comment mentions are not.
 */

#include <gtest/gtest.h>

#include "analysis_test_util.hh"

namespace {

using namespace gpuscale::analysis;
using namespace gpuscale::analysis::test;

TEST(RuleLocale, FlagsParsersAndFloatSerializationConversions)
{
    const auto repo = loadFixture("locale_bad");
    const auto report = runRule(*makeLocaleRule(), repo);

    // atof(, strtod(, and the strprintf("%g") literal.  The %.2f
    // table formatting and the atof( mention inside a comment in the
    // same fixture must not fire.
    EXPECT_EQ(findingCount(report, "locale"), 3u) << report.render();
    EXPECT_TRUE(anyMessageContains(report, "atof")) << report.render();
    EXPECT_TRUE(anyMessageContains(report, "strtod"))
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "%g")) << report.render();
}

} // namespace
