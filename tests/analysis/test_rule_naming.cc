/**
 * @file
 * Telemetry-naming rule tests: metric keys, trace-span literals, and
 * manifest extra keys must be lowercase dotted.
 */

#include <gtest/gtest.h>

#include "analysis_test_util.hh"

namespace {

using namespace gpuscale::analysis;
using namespace gpuscale::analysis::test;

TEST(RuleNaming, FlagsUppercaseKeysButNotConformingOnes)
{
    const auto repo = loadFixture("naming_bad");
    const auto report = runRule(*makeNamingRule(), repo);

    // counter("Sweep.Estimates"), shardedCounter("Sharded.Bad"),
    // GPUSCALE_TRACE_SCOPE("BadSpan"), and extra["Bad-Key"] — while
    // "sweep.ok_name", "sweep.sharded.ok", the "sweep/" runtime
    // prefix, and "noise_sigma" stay silent.
    EXPECT_EQ(findingCount(report, "naming"), 4u) << report.render();
    EXPECT_TRUE(anyMessageContains(report, "Sweep.Estimates"))
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "Sharded.Bad"))
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "BadSpan"))
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "Bad-Key"))
        << report.render();
}

TEST(RuleNaming, KeyPredicates)
{
    EXPECT_TRUE(isLowercaseDottedKey("sweep.estimates"));
    EXPECT_TRUE(isLowercaseDottedKey("noise_sigma"));
    EXPECT_FALSE(isLowercaseDottedKey("Sweep.Estimates"));
    EXPECT_FALSE(isLowercaseDottedKey("sweep..x"));
    EXPECT_FALSE(isLowercaseDottedKey(""));

    EXPECT_TRUE(isLowercaseSpanName("parallel_for.worker"));
    EXPECT_TRUE(isLowercaseSpanName("sweep/"));
    EXPECT_FALSE(isLowercaseSpanName("BadSpan"));
}

} // namespace
