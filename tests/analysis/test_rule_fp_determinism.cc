/**
 * @file
 * FP-determinism rule tests: reassociation-prone reductions,
 * unordered-container iteration feeding arithmetic, fast-math build
 * flags, and privately duplicated arithmetic helpers are flagged;
 * blessed helper files and header-published APIs are not.
 */

#include <gtest/gtest.h>

#include "analysis_test_util.hh"

namespace {

using namespace gpuscale::analysis;
using namespace gpuscale::analysis::test;

TEST(RuleFpDeterminism, FlagsAllFourSeededHazards)
{
    const auto repo = loadFixture("fp_determinism_bad");
    const auto report = runRule(*makeFpDeterminismRule(), repo);

    // One accumulate-over-doubles, one unordered_map range-for
    // feeding '+=', one helper defined in analytic_batch.cc but
    // called from analytic_model.cc too, one -ffast-math flag in a
    // CMake list — exactly four, nothing else.
    EXPECT_EQ(findingCount(report, "fp-determinism"), 4u)
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "accumulate"))
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "unordered"))
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "occupancyTerm"))
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "-ffast-math"))
        << report.render();
}

TEST(RuleFpDeterminism, BlessedHelpersAndPublishedApisStaySilent)
{
    // stats.cc is a blessed helper file (accumulate is its job);
    // occupancyTerm is declared in analytic_batch.hh so both TUs
    // share one definition; the tally uses an ordered std::map.
    const auto repo = loadFixture("fp_determinism_ok");
    const auto report = runRule(*makeFpDeterminismRule(), repo);
    EXPECT_EQ(report.findings().size(), 0u) << report.render();
}

} // namespace
