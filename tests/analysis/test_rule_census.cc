/**
 * @file
 * Census-conformance rule tests using miniature suites with known
 * registration counts.
 */

#include <gtest/gtest.h>

#include "analysis_test_util.hh"

namespace {

using namespace gpuscale::analysis;
using namespace gpuscale::analysis::test;

LintOptions
miniCensus(size_t kernels, size_t programs)
{
    LintOptions opts;
    opts.census.kernels = kernels;
    opts.census.programs = programs;
    return opts;
}

TEST(RuleCensus, MatchingSuiteIsClean)
{
    const auto repo = loadFixture("census_ok");
    const auto report =
        runRule(*makeCensusRule(), repo, miniCensus(3, 2));
    EXPECT_EQ(report.findings().size(), 0u) << report.render();
}

TEST(RuleCensus, HeaderClaimMismatchAndTotalDriftBothFire)
{
    const auto repo = loadFixture("census_drift");
    // Expectation matches the header's (wrong) claim of 4 kernels, so
    // both the per-file claim check and the total drift check fire.
    const auto report =
        runRule(*makeCensusRule(), repo, miniCensus(4, 2));
    EXPECT_EQ(findingCount(report, "census"), 2u) << report.render();
    EXPECT_TRUE(anyMessageContains(report, "suite header claims"))
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "census drift"))
        << report.render();
}

TEST(RuleCensus, DefaultExpectationRejectsTheMiniSuite)
{
    // With the paper's real numbers the fixture is of course way off:
    // the drift message must carry both sides of the comparison.
    const auto repo = loadFixture("census_ok");
    const auto report = runRule(*makeCensusRule(), repo);
    EXPECT_GE(findingCount(report, "census"), 1u) << report.render();
    EXPECT_TRUE(anyMessageContains(report, "267 kernels / 97"))
        << report.render();
}

TEST(RuleCensus, MissingSuitesIsARepoWideError)
{
    // A repo with sources but no suite files cannot derive a census.
    const auto repo = loadFixture("layering_clean");
    const auto report = runRule(*makeCensusRule(), repo);
    ASSERT_EQ(report.findings().size(), 1u) << report.render();
    EXPECT_EQ(report.findings()[0].file, "");
    EXPECT_TRUE(anyMessageContains(report, "no src/workloads"))
        << report.render();
}

} // namespace
