/**
 * @file
 * Lock-discipline rule tests: a guarded_by-annotated field touched
 * without its mutex held is flagged; lock_guard/unique_lock scopes
 * and *Locked helpers are accepted; broken annotations themselves
 * become findings.
 */

#include <gtest/gtest.h>

#include "analysis_test_util.hh"

namespace {

using namespace gpuscale::analysis;
using namespace gpuscale::analysis::test;

TEST(RuleLockDiscipline, FlagsUnguardedTouchOfAnnotatedField)
{
    const auto repo = loadFixture("lock_discipline_bad");
    const auto report = runRule(*makeLockDisciplineRule(), repo);

    // Cache::put assigns value_ with no lock in scope; getLocked in
    // the same file is exempt by naming convention.
    EXPECT_EQ(findingCount(report, "lock-discipline"), 1u)
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "value_"))
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "mu_")) << report.render();
}

TEST(RuleLockDiscipline, LockScopesAndLockedSuffixAreAccepted)
{
    // put holds a lock_guard; waitNonZero touches through a nested
    // block under a unique_lock; getLocked relies on the suffix.
    const auto repo = loadFixture("lock_discipline_ok");
    const auto report = runRule(*makeLockDisciplineRule(), repo);
    EXPECT_EQ(report.findings().size(), 0u) << report.render();
}

TEST(RuleLockDiscipline, BrokenAnnotationsAreFindings)
{
    const auto repo = loadFixture("lock_discipline_markers_bad");
    const auto report = runRule(*makeLockDisciplineRule(), repo);

    // One truncated 'guarded_by(' and one naming a mutex absent
    // from the file.
    EXPECT_EQ(findingCount(report, "lock-discipline"), 2u)
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "malformed"))
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "nonexistent_mu_"))
        << report.render();
}

} // namespace
