/**
 * @file
 * Error-code rule tests: dropped std::error_code declarations are
 * flagged; inspected, forwarded, out-parameter, and allow()ed ones
 * are not.
 */

#include <gtest/gtest.h>

#include "analysis_test_util.hh"

namespace {

using namespace gpuscale::analysis;
using namespace gpuscale::analysis::test;

TEST(RuleErrorCode, FlagsDroppedErrorCodes)
{
    const auto repo = loadFixture("error_code_bad");
    const auto report = runRule(*makeErrorCodeRule(), repo);

    // The two fire-and-forget declarations ('ec' and 'rc'); the
    // comment mentioning std::error_code must not count.
    EXPECT_EQ(findingCount(report, "error-code"), 2u)
        << report.render();
    EXPECT_TRUE(anyMessageContains(report, "'ec'")) << report.render();
    EXPECT_TRUE(anyMessageContains(report, "'rc'")) << report.render();
}

TEST(RuleErrorCode, InspectedUsesAreClean)
{
    const auto repo = loadFixture("error_code_ok");
    const auto report = runRule(*makeErrorCodeRule(), repo);

    // fatal_if(ec, ...), if (ec), ec.message(), !ec, return ec, a
    // reference out-parameter, and a suppressed fire-and-forget: no
    // findings.
    EXPECT_EQ(findingCount(report, "error-code"), 0u)
        << report.render();
}

} // namespace
