/**
 * @file
 * Layering rule tests against the miniature fixture repos.
 */

#include <gtest/gtest.h>

#include "analysis_test_util.hh"

namespace {

using namespace gpuscale::analysis;
using namespace gpuscale::analysis::test;

TEST(RuleLayering, CleanRepoHasNoFindings)
{
    const auto repo = loadFixture("layering_clean");
    ASSERT_EQ(repo.files.size(), 3u);
    const auto report = runRule(*makeLayeringRule(), repo);
    EXPECT_EQ(report.findings().size(), 0u) << report.render();
}

TEST(RuleLayering, LowerLayerIncludingHigherIsAnError)
{
    const auto repo = loadFixture("layering_violation");
    const auto report = runRule(*makeLayeringRule(), repo);
    ASSERT_EQ(findingCount(report, "layering"), 1u) << report.render();
    const auto &f = report.findings()[0];
    EXPECT_EQ(f.severity, Severity::Error);
    EXPECT_EQ(f.file, "src/base/bad.cc");
    EXPECT_TRUE(anyMessageContains(report, "harness"))
        << report.render();
}

TEST(RuleLayering, HeaderCycleIsDetected)
{
    const auto repo = loadFixture("layering_cycle");
    const auto report = runRule(*makeLayeringRule(), repo);
    EXPECT_GE(findingCount(report, "layering"), 1u) << report.render();
    EXPECT_TRUE(anyMessageContains(report, "cycle")) << report.render();
}

} // namespace
