/**
 * @file
 * Self-test: gpuscale-lint must run clean on the repository's own
 * tree, and the census rule must independently re-derive the paper's
 * 267 kernels / 97 programs from the suite sources.
 */

#include <gtest/gtest.h>

#include "analysis_test_util.hh"

namespace {

using namespace gpuscale::analysis;
using namespace gpuscale::analysis::test;

TEST(LintSelfTest, OwnTreeIsCleanUnderEveryRule)
{
    const auto repo = loadRepo(requiredEnv("GPUSCALE_REPO_ROOT"));
    ASSERT_GT(repo.files.size(), 50u)
        << "repo scan looks truncated; is GPUSCALE_REPO_ROOT the "
        << "checkout root?";

    Report report;
    const LintOptions opts;
    for (const auto &rule : allRules())
        rule->run(repo, opts, report);

    EXPECT_EQ(report.errorCount(), 0u) << report.render();
    EXPECT_EQ(report.warningCount(), 0u) << report.render();
}

TEST(LintSelfTest, CensusRuleRederivesThePaperCounts)
{
    // Run the census rule with an impossible expectation so the
    // drift message reports what the sources actually register —
    // proving the 267/97 totals are re-derived, not assumed.
    const auto repo = loadRepo(requiredEnv("GPUSCALE_REPO_ROOT"));
    LintOptions opts;
    opts.census.kernels = 1;
    opts.census.programs = 1;
    const auto report = runRule(*makeCensusRule(), repo, opts);
    ASSERT_EQ(findingCount(report, "census"), 1u) << report.render();
    EXPECT_TRUE(anyMessageContains(
        report, "register 267 kernels across 97 programs"))
        << report.render();
}

} // namespace
