/**
 * @file
 * Regime tests: each archetype must land in the scaling regime its
 * name promises on the studied grid.  These pin down the zoo's
 * behavioural coverage — if a model change silently drains a taxonomy
 * class, these tests catch it before the census does.
 */

#include "workloads/archetypes.hh"

#include <gtest/gtest.h>

#include "gpu/analytic_model.hh"
#include "gpu/gpu_config.hh"
#include "harness/sweep.hh"
#include "scaling/config_space.hh"
#include "scaling/taxonomy.hh"

namespace gpuscale {
namespace workloads {
namespace {

scaling::KernelClassification
classify(const gpu::KernelDesc &kernel)
{
    const gpu::AnalyticModel model;
    const auto space = scaling::ConfigSpace::paperGrid();
    return scaling::classifySurface(
        harness::sweepKernel(model, kernel, space));
}

TEST(ArchetypeTest, DenseComputeIsCoreBound)
{
    const auto c = classify(denseCompute(
        "a/dense/k", {.wgs = 8192, .wi_per_wg = 256}));
    EXPECT_EQ(c.cls, scaling::TaxonomyClass::CoreBound)
        << scaling::taxonomyClassName(c.cls);
    EXPECT_GT(c.freq.total_gain, 3.5);
}

TEST(ArchetypeTest, StreamingIsMemoryBound)
{
    const auto c = classify(streaming(
        "a/stream/k", {.wgs = 16384, .wi_per_wg = 256}));
    EXPECT_EQ(c.cls, scaling::TaxonomyClass::MemoryBound)
        << scaling::taxonomyClassName(c.cls);
    EXPECT_GT(c.mem.total_gain, 4.0);
}

TEST(ArchetypeTest, TiledLdsIsCoreClockDriven)
{
    const auto c = classify(tiledLds(
        "a/lds/k", {.wgs = 4096, .wi_per_wg = 256}));
    EXPECT_TRUE(c.cls == scaling::TaxonomyClass::CoreBound ||
                c.cls == scaling::TaxonomyClass::Balanced)
        << scaling::taxonomyClassName(c.cls);
    EXPECT_GT(c.freq.total_gain, 2.5);
}

TEST(ArchetypeTest, CacheThrashIsCuAdverse)
{
    const auto c = classify(cacheThrash(
        "a/thrash/k", {.wgs = 4096, .wi_per_wg = 256}, 18.0));
    EXPECT_EQ(c.cls, scaling::TaxonomyClass::CuAdverse)
        << scaling::taxonomyClassName(c.cls);
    // The curve peaks early and collapses: the end sits far below the
    // peak even though it can stay near the 4-CU starting point.
    EXPECT_LT(c.cu.total_gain, 1.0);
}

TEST(ArchetypeTest, PointerChaseIsLatencyLimited)
{
    const auto c = classify(pointerChase(
        "a/chase/k", {.wgs = 16, .wi_per_wg = 64}));
    // Latency-limited kernels respond weakly to either clock alone:
    // at 200 MHz the on-chip (core-clocked) latency dominates, at low
    // memory clocks the DRAM roofline binds, so the class can read as
    // latency-bound, memory-bound, or balanced — never core-bound,
    // and never with strong frequency scaling.
    EXPECT_TRUE(c.cls == scaling::TaxonomyClass::LatencyBound ||
                c.cls == scaling::TaxonomyClass::MemoryBound ||
                c.cls == scaling::TaxonomyClass::Balanced)
        << scaling::taxonomyClassName(c.cls);
    EXPECT_LT(c.freq.total_gain, 3.0);
}

TEST(ArchetypeTest, SmallGridIsParallelismStarved)
{
    const auto c = classify(smallGridCompute(
        "a/small/k", {.wgs = 12, .wi_per_wg = 256}));
    EXPECT_EQ(c.cls, scaling::TaxonomyClass::ParallelismStarved)
        << scaling::taxonomyClassName(c.cls);
    EXPECT_LE(c.cu90, 16);
}

TEST(ArchetypeTest, TinyIterativeIsLaunchBound)
{
    const auto c = classify(tinyIterative(
        "a/tiny/k", {.wgs = 2, .wi_per_wg = 64, .launches = 2000,
                     .intensity = 0.05}));
    EXPECT_EQ(c.cls, scaling::TaxonomyClass::LaunchBound)
        << scaling::taxonomyClassName(c.cls);
    EXPECT_LT(c.perf_range, 1.25);
}

TEST(ArchetypeTest, ContendedReductionIsCuAdverse)
{
    const auto c = classify(reduction(
        "a/red/k", {.wgs = 4096, .wi_per_wg = 256}, 0.9));
    EXPECT_EQ(c.cls, scaling::TaxonomyClass::CuAdverse)
        << scaling::taxonomyClassName(c.cls);
}

TEST(ArchetypeTest, UncontendedReductionIsNotAdverse)
{
    const auto c = classify(reduction(
        "a/red0/k", {.wgs = 4096, .wi_per_wg = 256}, 0.0));
    EXPECT_NE(c.cls, scaling::TaxonomyClass::CuAdverse);
}

TEST(ArchetypeTest, GraphTraversalSaturatesBandwidth)
{
    const auto c = classify(graphTraversal(
        "a/graph/k", {.wgs = 512, .wi_per_wg = 256, .launches = 20}));
    EXPECT_TRUE(c.cls == scaling::TaxonomyClass::MemoryBound ||
                c.cls == scaling::TaxonomyClass::LatencyBound)
        << scaling::taxonomyClassName(c.cls);
}

TEST(ArchetypeTest, StencilRespondsToBothClockDomains)
{
    const auto c = classify(stencil(
        "a/sten/k", {.wgs = 4096, .wi_per_wg = 256}, 20.0));
    EXPECT_TRUE(c.cls == scaling::TaxonomyClass::Balanced ||
                c.cls == scaling::TaxonomyClass::MemoryBound ||
                c.cls == scaling::TaxonomyClass::CoreBound)
        << scaling::taxonomyClassName(c.cls);
    EXPECT_GT(c.perf_range, 3.0);
}

TEST(ArchetypeTest, IntensityScalesWork)
{
    const gpu::AnalyticModel model;
    const auto heavy = denseCompute(
        "a/h/k", {.wgs = 4096, .wi_per_wg = 256, .launches = 1,
                  .intensity = 2.0});
    const auto light = denseCompute(
        "a/l/k", {.wgs = 4096, .wi_per_wg = 256, .launches = 1,
                  .intensity = 1.0});
    const double th =
        model.estimate(heavy, gpu::makeMaxConfig()).time_s;
    const double tl =
        model.estimate(light, gpu::makeMaxConfig()).time_s;
    EXPECT_NEAR(th / tl, 2.0, 0.2);
}

} // namespace
} // namespace workloads
} // namespace gpuscale
