/**
 * @file
 * Tests for the workload registry: the census must match the paper's
 * population exactly, and every descriptor must be well-formed.
 */

#include "workloads/registry.hh"

#include <gtest/gtest.h>

#include <set>

namespace gpuscale {
namespace workloads {
namespace {

TEST(RegistryTest, PaperPopulation)
{
    const auto &reg = WorkloadRegistry::instance();
    EXPECT_EQ(reg.numPrograms(), 97u);
    EXPECT_EQ(reg.numKernels(), 267u);
}

TEST(RegistryTest, SevenSuites)
{
    const auto suites = WorkloadRegistry::instance().suiteNames();
    EXPECT_EQ(suites.size(), 7u);
    const std::set<std::string> expected{
        "rodinia", "parboil", "shoc", "amdsdk",
        "polybench", "opendwarfs", "pannotia"};
    EXPECT_EQ(std::set<std::string>(suites.begin(), suites.end()),
              expected);
}

TEST(RegistryTest, CensusRowsSumToTotal)
{
    const auto rows = WorkloadRegistry::instance().census();
    ASSERT_EQ(rows.size(), 8u); // 7 suites + total
    size_t programs = 0, kernels = 0;
    for (size_t i = 0; i + 1 < rows.size(); ++i) {
        programs += rows[i].programs;
        kernels += rows[i].kernels;
    }
    EXPECT_EQ(rows.back().suite, "total");
    EXPECT_EQ(rows.back().programs, programs);
    EXPECT_EQ(rows.back().kernels, kernels);
}

TEST(RegistryTest, KernelNamesAreCanonicalAndUnique)
{
    const auto kernels = WorkloadRegistry::instance().allKernels();
    std::set<std::string> names;
    for (const auto *k : kernels) {
        // suite/program/kernel form: exactly two slashes.
        const size_t first = k->name.find('/');
        const size_t last = k->name.rfind('/');
        EXPECT_NE(first, std::string::npos) << k->name;
        EXPECT_NE(first, last) << k->name;
        EXPECT_TRUE(names.insert(k->name).second)
            << "duplicate kernel name: " << k->name;
    }
    EXPECT_EQ(names.size(), 267u);
}

TEST(RegistryTest, EveryKernelValidates)
{
    for (const auto *k : WorkloadRegistry::instance().allKernels())
        EXPECT_NO_THROW(k->validate()) << k->name;
}

TEST(RegistryTest, FindKernel)
{
    const auto &reg = WorkloadRegistry::instance();
    const auto *k = reg.findKernel("rodinia/hotspot/calculate_temp");
    ASSERT_NE(k, nullptr);
    EXPECT_EQ(k->name, "rodinia/hotspot/calculate_temp");
    EXPECT_EQ(reg.findKernel("no/such/kernel"), nullptr);
}

TEST(RegistryTest, SuiteLookupsConsistent)
{
    const auto &reg = WorkloadRegistry::instance();
    size_t total = 0;
    for (const auto &suite : reg.suiteNames()) {
        const auto programs = reg.programsInSuite(suite);
        const auto kernels = reg.kernelsInSuite(suite);
        EXPECT_FALSE(programs.empty());
        size_t from_programs = 0;
        for (const auto *p : programs)
            from_programs += p->kernels().size();
        EXPECT_EQ(kernels.size(), from_programs);
        total += kernels.size();
    }
    EXPECT_EQ(total, 267u);
}

TEST(RegistryTest, LaunchGeometryIsRealistic)
{
    for (const auto *k : WorkloadRegistry::instance().allKernels()) {
        EXPECT_GE(k->num_workgroups, 1) << k->name;
        EXPECT_LE(k->num_workgroups, 1 << 20) << k->name;
        EXPECT_LE(k->launches, 100000) << k->name;
        EXPECT_LE(k->vgprs, 256) << k->name;
    }
}

} // namespace
} // namespace workloads
} // namespace gpuscale
