/**
 * @file
 * Tests for the random kernel generator.
 */

#include "workloads/generator.hh"

#include <gtest/gtest.h>

#include <set>

namespace gpuscale {
namespace workloads {
namespace {

TEST(GeneratorTest, SameSeedSameKernels)
{
    KernelGenerator a(42), b(42);
    for (int i = 0; i < 50; ++i) {
        const auto ka = a.next();
        const auto kb = b.next();
        EXPECT_EQ(ka.name, kb.name);
        EXPECT_EQ(ka.num_workgroups, kb.num_workgroups);
        EXPECT_DOUBLE_EQ(ka.valu_ops, kb.valu_ops);
        EXPECT_DOUBLE_EQ(ka.mem_loads, kb.mem_loads);
        EXPECT_DOUBLE_EQ(ka.footprint_bytes_per_wg,
                         kb.footprint_bytes_per_wg);
    }
}

TEST(GeneratorTest, DifferentSeedsDiffer)
{
    KernelGenerator a(1), b(2);
    int identical = 0;
    for (int i = 0; i < 50; ++i) {
        if (a.next().valu_ops == b.next().valu_ops)
            ++identical;
    }
    EXPECT_LT(identical, 3);
}

TEST(GeneratorTest, AllKernelsValidate)
{
    KernelGenerator gen(7);
    for (const auto &k : gen.batch(1000))
        EXPECT_NO_THROW(k.validate()) << k.name;
}

TEST(GeneratorTest, NamesAreUnique)
{
    KernelGenerator gen(7);
    std::set<std::string> names;
    for (const auto &k : gen.batch(500))
        EXPECT_TRUE(names.insert(k.name).second) << k.name;
}

TEST(GeneratorTest, RespectsBounds)
{
    GeneratorBounds bounds;
    bounds.min_wgs = 8;
    bounds.max_wgs = 64;
    bounds.min_wi = 64;
    bounds.max_wi = 128;
    bounds.max_launches = 10;
    KernelGenerator gen(3, bounds);
    for (const auto &k : gen.batch(200)) {
        EXPECT_GE(k.num_workgroups, 8);
        EXPECT_LE(k.num_workgroups, 64);
        EXPECT_GE(k.work_items_per_wg, 64);
        EXPECT_LE(k.work_items_per_wg, 128);
        EXPECT_LE(k.launches, 10);
    }
}

TEST(GeneratorTest, CoversDiverseRegimes)
{
    // The sampler should produce kernels with and without LDS,
    // atomics, divergence, and serial fractions.
    KernelGenerator gen(11);
    int with_lds = 0, with_atomics = 0, with_div = 0, with_serial = 0;
    const auto batch = gen.batch(500);
    for (const auto &k : batch) {
        with_lds += k.lds_ops > 0;
        with_atomics += k.atomic_ops > 0;
        with_div += k.branch_divergence > 0;
        with_serial += k.serial_fraction > 0;
    }
    EXPECT_GT(with_lds, 100);
    EXPECT_LT(with_lds, 400);
    EXPECT_GT(with_atomics, 40);
    EXPECT_GT(with_div, 100);
    EXPECT_GT(with_serial, 20);
}

TEST(GeneratorTest, BatchEqualsRepeatedNext)
{
    KernelGenerator a(9), b(9);
    const auto batch = a.batch(20);
    for (const auto &expected : batch) {
        const auto k = b.next();
        EXPECT_EQ(k.name, expected.name);
        EXPECT_DOUBLE_EQ(k.valu_ops, expected.valu_ops);
    }
}

} // namespace
} // namespace workloads
} // namespace gpuscale
