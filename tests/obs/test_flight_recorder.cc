/**
 * @file
 * Flight recorder tests: ring round-trip, wrap behavior, record-time
 * sanitization, the crash-dump-on-abort path, and the acceptance
 * proof that a SIGKILLed process leaves a readable black box behind.
 *
 * The fork-based tests fork before this process creates any threads
 * (forking a multi-threaded process can clone a held malloc lock into
 * the child); the recorder itself spawns none.
 */

#include "obs/flight_recorder.hh"

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>

#include "obs/json.hh"
#include "support/temp_dir.hh"

namespace gpuscale {
namespace obs {
namespace {

JsonValue
parseFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return parseJson(text);
}

/** Poll for a file to appear, up to a generous deadline. */
bool
waitForFile(const std::string &path)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
        std::error_code ec;
        if (std::filesystem::exists(path, ec) && !ec)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
}

TEST(FlightRecorderTest, RecordDumpRoundTripInSequenceOrder)
{
    test::ScopedTempDir dir("flight_roundtrip");
    const std::string ring = dir.sub("flight.ring");
    const std::string json = dir.sub("flight.json");

    ASSERT_TRUE(FlightRecorder::start(ring, 16));
    EXPECT_TRUE(FlightRecorder::active());
    // A second start is refused, not stacked.
    EXPECT_FALSE(FlightRecorder::start(ring, 16));

    FlightRecorder::record("event", "first", "d=1", 100, 0);
    FlightRecorder::recordSpan("sweep/kernel", 200.0, 50.0);
    FlightRecorder::record("degradation", "cache miss storm");

    EXPECT_EQ(FlightRecorder::dump(json, "test"), 3u);
    FlightRecorder::stop();
    EXPECT_FALSE(FlightRecorder::active());

    const JsonValue doc = parseFile(json);
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("reason").str, "test");
    const auto &events = doc.at("events").array;
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].at("name").str, "first");
    EXPECT_EQ(events[0].at("kind").str, "event");
    EXPECT_EQ(events[0].at("detail").str, "d=1");
    EXPECT_DOUBLE_EQ(events[0].at("ts_us").number, 100.0);
    EXPECT_EQ(events[1].at("kind").str, "span");
    EXPECT_EQ(events[1].at("name").str, "sweep/kernel");
    EXPECT_DOUBLE_EQ(events[1].at("dur_us").number, 50.0);
    EXPECT_EQ(events[2].at("kind").str, "degradation");
    // Sequence numbers are strictly increasing.
    EXPECT_LT(events[0].at("seq").number, events[1].at("seq").number);
    EXPECT_LT(events[1].at("seq").number, events[2].at("seq").number);
}

TEST(FlightRecorderTest, RingWrapKeepsTheNewestEvents)
{
    test::ScopedTempDir dir("flight_wrap");
    const std::string ring = dir.sub("flight.ring");
    const std::string json = dir.sub("flight.json");

    constexpr size_t kSlots = 8;
    ASSERT_TRUE(FlightRecorder::start(ring, kSlots));
    for (int i = 0; i < 20; ++i)
        FlightRecorder::record("event", "e" + std::to_string(i));
    EXPECT_EQ(FlightRecorder::dump(json, "wrap"), kSlots);
    FlightRecorder::stop();

    const JsonValue doc = parseFile(json);
    const auto &events = doc.at("events").array;
    ASSERT_EQ(events.size(), kSlots);
    // Oldest surviving event is #12 (0-based): 20 recorded, 8 kept.
    EXPECT_EQ(events.front().at("name").str, "e12");
    EXPECT_EQ(events.back().at("name").str, "e19");
}

TEST(FlightRecorderTest, HostileStringsAreSanitizedAtRecordTime)
{
    test::ScopedTempDir dir("flight_sanitize");
    const std::string ring = dir.sub("flight.ring");
    const std::string json = dir.sub("flight.json");

    ASSERT_TRUE(FlightRecorder::start(ring, 8));
    FlightRecorder::record("ev\"il", "quote\"brace}newline\n",
                           "back\\slash");
    EXPECT_EQ(FlightRecorder::dump(json, "sanitize"), 1u);
    FlightRecorder::stop();

    // The dump must still parse — record() already replaced every
    // character outside the telemetry charset with '_'.
    const JsonValue doc = parseFile(json);
    const auto &events = doc.at("events").array;
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].at("kind").str, "ev_il");
    EXPECT_EQ(events[0].at("name").str, "quote_brace_newline_");
    EXPECT_EQ(events[0].at("detail").str, "back_slash");
}

TEST(FlightRecorderTest, InactiveRecorderIsInert)
{
    ASSERT_FALSE(FlightRecorder::active());
    FlightRecorder::record("event", "dropped"); // Must not crash.
    EXPECT_EQ(FlightRecorder::dump("/tmp/never-written.json", "x"),
              0u);
    FlightRecorder::stop();
}

TEST(FlightRecorderTest, RenderRingFileRejectsNonRings)
{
    test::ScopedTempDir dir("flight_badring");
    EXPECT_THROW(renderRingFile(dir.sub("missing.ring")),
                 std::runtime_error);

    const std::string not_ring = dir.sub("not_a.ring");
    std::ofstream(not_ring) << "this is not a flight ring";
    EXPECT_THROW(renderRingFile(not_ring), std::runtime_error);
}

// The acceptance proof: a process killed with SIGKILL — which no
// handler can observe — leaves an mmap'd ring whose dirty pages
// survive in the page cache, and the post-mortem reader recovers the
// last span recorded before the kill.
TEST(FlightRecorderKillTest, SigkilledProcessLeavesReadableBlackBox)
{
    test::ScopedTempDir dir("flight_kill");
    const std::string ring = dir.sub("flight.ring");
    const std::string ready = dir.sub("ready");

    const pid_t child = fork();
    ASSERT_NE(child, -1);
    if (child == 0) {
        // Child: record a history ending in a known span, signal
        // readiness, then wait to be killed.  _exit on any failure —
        // gtest assertions cannot cross the fork.
        if (!FlightRecorder::start(ring, 32))
            _exit(10);
        for (int i = 0; i < 40; ++i)
            FlightRecorder::record("event", "warmup",
                                   std::to_string(i));
        FlightRecorder::recordSpan("sweep/rodinia/last-span-marker",
                                   1000.0, 42.0);
        { std::ofstream(ready) << "ok"; }
        for (;;)
            ::pause();
    }

    ASSERT_TRUE(waitForFile(ready)) << "child never became ready";
    ::kill(child, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // Post-mortem: the ring file must render to parseable JSON whose
    // final event is the last span recorded before the kill.
    const JsonValue doc = parseJson(renderRingFile(ring));
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("reason").str, "post-mortem");
    const auto &events = doc.at("events").array;
    ASSERT_FALSE(events.empty());
    const JsonValue &last = events.back();
    EXPECT_EQ(last.at("kind").str, "span");
    EXPECT_EQ(last.at("name").str,
              "sweep/rodinia/last-span-marker");
    EXPECT_DOUBLE_EQ(last.at("dur_us").number, 42.0);
}

// The catchable-crash path: SIGABRT (what panic() and fault-injection
// aborts raise) must produce the black-box dump from inside the
// signal handler before the process dies with the signal.
TEST(FlightRecorderKillTest, AbortProducesCrashDump)
{
    test::ScopedTempDir dir("flight_abort");
    const std::string ring = dir.sub("flight.ring");
    const std::string json = dir.sub("flight.json");

    const pid_t child = fork();
    ASSERT_NE(child, -1);
    if (child == 0) {
        if (!FlightRecorder::start(ring, 32))
            _exit(10);
        FlightRecorder::installCrashDump(json);
        FlightRecorder::record("fault", "injected-io-fault",
                               "site=sweep_cache.disk.read");
        std::abort();
    }

    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGABRT);

    const JsonValue doc = parseFile(json);
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("reason").str, "signal:SIGABRT");
    const auto &events = doc.at("events").array;
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.back().at("kind").str, "fault");
    EXPECT_EQ(events.back().at("name").str, "injected-io-fault");
}

} // namespace
} // namespace obs
} // namespace gpuscale
