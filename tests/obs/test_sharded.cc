/**
 * @file
 * Unit tests for the sharded hot-path instruments: merge correctness
 * under contention, shard pinning, the registry quiesce switch, and —
 * under TSan — resetAll() racing concurrent record()/inc() without a
 * data race.
 */

#include "obs/sharded.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "obs/metrics.hh"

namespace gpuscale {
namespace obs {
namespace {

TEST(ShardedLayoutTest, ShardCountIsBoundedPowerOfTwo)
{
    const unsigned n = shardCount();
    EXPECT_GE(n, 4u);
    EXPECT_LE(n, 64u);
    EXPECT_EQ(n & (n - 1), 0u) << "shard count must be a power of two";
    // Fixed for the process lifetime.
    EXPECT_EQ(shardCount(), n);
}

TEST(ShardedLayoutTest, HomeShardIsStableAndInRange)
{
    const unsigned mine = currentShard();
    EXPECT_LT(mine, shardCount());
    EXPECT_EQ(currentShard(), mine);
}

TEST(ShardedLayoutTest, ThreadShardHintPinsModuloShardCount)
{
    // The harness thread pool pins each worker to its spawn ordinal;
    // the hint must wrap rather than index out of range.
    unsigned observed = ~0u;
    std::thread t([&observed]() {
        setThreadShardHint(1);
        observed = currentShard();
    });
    t.join();
    EXPECT_EQ(observed, 1u % shardCount());

    unsigned wrapped = ~0u;
    std::thread u([&wrapped]() {
        setThreadShardHint(shardCount() + 2);
        wrapped = currentShard();
    });
    u.join();
    EXPECT_EQ(wrapped, 2u % shardCount());
}

TEST(ShardedCounterTest, ConcurrentIncrementsMergeExactly)
{
    ShardedCounter &c = Registry::instance().shardedCounter(
        "test.sharded.concurrent_counter", "test counter");
    c.reset();

    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c, t]() {
            setThreadShardHint(static_cast<unsigned>(t));
            for (uint64_t i = 0; i < kPerThread; ++i)
                c.inc();
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(c.value(), kThreads * kPerThread);

    // Per-shard values must account for every increment and show the
    // pinned threads spread across shards (not all on one stripe).
    const std::vector<uint64_t> per_shard = c.shardValues();
    ASSERT_EQ(per_shard.size(), shardCount());
    uint64_t total = 0;
    size_t active = 0;
    for (uint64_t v : per_shard) {
        total += v;
        if (v != 0)
            ++active;
    }
    EXPECT_EQ(total, kThreads * kPerThread);
    EXPECT_GE(active, std::min<size_t>(kThreads, shardCount()));
}

TEST(ShardedHistogramTest, MergedStatisticsMatchPlainHistogram)
{
    ShardedHistogram &h = Registry::instance().shardedHistogram(
        "test.sharded.histogram", "test histogram");
    h.reset();
    EXPECT_TRUE(h.empty());
    EXPECT_TRUE(std::isnan(h.minSample()));
    EXPECT_TRUE(std::isnan(h.maxSample()));
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);

    constexpr int kThreads = 8;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t]() {
            setThreadShardHint(static_cast<unsigned>(t));
            for (int i = 0; i < kPerThread; ++i)
                h.record(1e-6 * (t + 1));
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(h.count(),
              static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_FALSE(h.empty());
    EXPECT_DOUBLE_EQ(h.minSample(), 1e-6);
    EXPECT_DOUBLE_EQ(h.maxSample(), 8e-6);
    const double expected_sum =
        kPerThread * 1e-6 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8);
    EXPECT_NEAR(h.sum(), expected_sum, expected_sum * 1e-9);
    EXPECT_NEAR(h.mean(), expected_sum / h.count(),
                expected_sum * 1e-9);
    // Same bucket geometry as Histogram: the merged percentile lands
    // within log-bucket resolution of the true order statistics.
    EXPECT_NEAR(h.percentile(50), 4e-6, 2e-6);
    EXPECT_GE(h.percentile(0), 1e-6);
    EXPECT_LE(h.percentile(100), 8e-6);

    const std::vector<uint64_t> counts = h.shardCounts();
    ASSERT_EQ(counts.size(), shardCount());
    uint64_t total = 0;
    for (uint64_t v : counts)
        total += v;
    EXPECT_EQ(total, h.count());
}

TEST(ShardedQuiesceTest, QuiescedInstrumentsDropUpdates)
{
    ShardedCounter &c = Registry::instance().shardedCounter(
        "test.sharded.quiesce.counter", "test counter");
    ShardedHistogram &h = Registry::instance().shardedHistogram(
        "test.sharded.quiesce.hist", "test histogram");
    c.reset();
    h.reset();

    Registry::setQuiesced(true);
    c.inc(5);
    h.record(1e-3);
    Registry::setQuiesced(false);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_TRUE(h.empty());

    c.inc(5);
    h.record(1e-3);
    EXPECT_EQ(c.value(), 5u);
    EXPECT_EQ(h.count(), 1u);
}

// The TSan target for the reset race: resetAll() walks every
// registered instrument while writer threads keep hammering
// inc()/record().  All stores are relaxed atomics, so there is no
// happens-before edge to assert on — the test's contract is simply
// "no data race and no torn merge" under the sanitizer, plus the
// post-join invariant that a final reset leaves everything empty.
TEST(ShardedResetRaceTest, ResetAllRacesConcurrentRecordsCleanly)
{
    auto &reg = Registry::instance();
    ShardedCounter &c =
        reg.shardedCounter("test.sharded.reset_race.counter",
                           "test counter");
    ShardedHistogram &h =
        reg.shardedHistogram("test.sharded.reset_race.hist",
                             "test histogram");

    std::atomic<bool> stop{false};
    constexpr int kWriters = 4;
    std::vector<std::thread> writers;
    for (int t = 0; t < kWriters; ++t) {
        writers.emplace_back([&, t]() {
            setThreadShardHint(static_cast<unsigned>(t));
            while (!stop.load(std::memory_order_relaxed)) {
                c.inc();
                h.record(1e-6);
            }
        });
    }
    for (int i = 0; i < 200; ++i) {
        reg.resetAll();
        // A snapshot taken mid-race must stay internally sane: the
        // merge never manufactures values no writer produced.
        const double max = h.maxSample();
        EXPECT_TRUE(std::isnan(max) || max == 1e-6);
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto &t : writers)
        t.join();

    reg.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_TRUE(h.empty());
    EXPECT_TRUE(std::isnan(h.minSample()));
}

} // namespace
} // namespace obs
} // namespace gpuscale
