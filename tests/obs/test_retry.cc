/**
 * @file
 * Retry-with-backoff tests: attempt accounting, exhaustion, metric
 * deltas, and exception transparency.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>

#include "obs/metrics.hh"
#include "obs/retry.hh"

namespace gpuscale {
namespace {

uint64_t
counterValue(const char *name)
{
    return obs::Registry::instance().counter(name).value();
}

obs::RetryPolicy
fastPolicy(int attempts)
{
    obs::RetryPolicy policy;
    policy.max_attempts = attempts;
    policy.base_backoff_ms = 0.0;
    policy.max_backoff_ms = 0.0;
    return policy;
}

TEST(Retry, FirstTrySuccessMakesOneAttemptAndNoRetryMetrics)
{
    const uint64_t attempts0 = counterValue("retry.attempts");
    const uint64_t exhausted0 = counterValue("retry.exhausted");

    int calls = 0;
    EXPECT_TRUE(obs::retryWithBackoff(fastPolicy(3), "test-op",
                                      [&] { return ++calls > 0; }));
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(counterValue("retry.attempts"), attempts0);
    EXPECT_EQ(counterValue("retry.exhausted"), exhausted0);
}

TEST(Retry, TransientFailureSucceedsAfterRetries)
{
    const uint64_t attempts0 = counterValue("retry.attempts");
    const uint64_t exhausted0 = counterValue("retry.exhausted");

    int calls = 0;
    EXPECT_TRUE(obs::retryWithBackoff(fastPolicy(3), "test-op",
                                      [&] { return ++calls >= 3; }));
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(counterValue("retry.attempts"), attempts0 + 2);
    EXPECT_EQ(counterValue("retry.exhausted"), exhausted0);
}

TEST(Retry, ExhaustionReturnsFalseAndCounts)
{
    const uint64_t exhausted0 = counterValue("retry.exhausted");

    int calls = 0;
    EXPECT_FALSE(obs::retryWithBackoff(fastPolicy(3), "test-op", [&] {
        ++calls;
        return false;
    }));
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(counterValue("retry.exhausted"), exhausted0 + 1);
}

TEST(Retry, SingleAttemptPolicyNeverRetries)
{
    const uint64_t attempts0 = counterValue("retry.attempts");

    int calls = 0;
    EXPECT_FALSE(obs::retryWithBackoff(fastPolicy(1), "test-op", [&] {
        ++calls;
        return false;
    }));
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(counterValue("retry.attempts"), attempts0);
}

TEST(Retry, ExceptionsPropagateImmediately)
{
    int calls = 0;
    EXPECT_THROW(obs::retryWithBackoff(fastPolicy(3), "test-op",
                                       [&]() -> bool {
                                           ++calls;
                                           throw std::runtime_error(
                                               "not transient");
                                       }),
                 std::runtime_error);
    // A throwing operation is a crash under test, not a transient:
    // exactly one call, no retry loop.
    EXPECT_EQ(calls, 1);
}

TEST(Retry, DeadlineOverloadSucceedsWithinBudget)
{
    const uint64_t capped0 = counterValue("retry.deadline.capped");

    int calls = 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(5);
    EXPECT_TRUE(obs::retryWithBackoff(fastPolicy(3), "test-op",
                                      deadline,
                                      [&] { return ++calls >= 2; }));
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(counterValue("retry.deadline.capped"), capped0);
}

TEST(Retry, DeadlineOverloadAlwaysRunsFirstAttempt)
{
    // An already-expired deadline still gets one try — the operation
    // may succeed instantly, and a zero-attempt "failure" would be
    // indistinguishable from a broken op.
    int calls = 0;
    const auto past = std::chrono::steady_clock::now() -
                      std::chrono::seconds(1);
    EXPECT_TRUE(obs::retryWithBackoff(fastPolicy(3), "test-op", past,
                                      [&] { return ++calls > 0; }));
    EXPECT_EQ(calls, 1);
}

TEST(Retry, DeadlineCapsRetriesAndCounts)
{
    const uint64_t capped0 = counterValue("retry.deadline.capped");
    const uint64_t exhausted0 = counterValue("retry.exhausted");

    // A generous attempt budget but an expired clock: one attempt,
    // then the deadline — not max_attempts — ends the loop.
    int calls = 0;
    const auto past = std::chrono::steady_clock::now() -
                      std::chrono::seconds(1);
    EXPECT_FALSE(obs::retryWithBackoff(fastPolicy(100), "test-op",
                                       past, [&] {
                                           ++calls;
                                           return false;
                                       }));
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(counterValue("retry.deadline.capped"), capped0 + 1);
    EXPECT_EQ(counterValue("retry.exhausted"), exhausted0 + 1);
}

TEST(Retry, ProcessPolicyIsOverridable)
{
    const obs::RetryPolicy saved = obs::retryPolicy();
    obs::RetryPolicy one = saved;
    one.max_attempts = 1;
    obs::setRetryPolicy(one);
    EXPECT_EQ(obs::retryPolicy().max_attempts, 1);
    obs::setRetryPolicy(saved);
    EXPECT_EQ(obs::retryPolicy().max_attempts, saved.max_attempts);
}

} // namespace
} // namespace gpuscale
