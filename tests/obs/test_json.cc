/**
 * @file
 * Unit tests for the obs JSON writer and parser.
 */

#include "obs/json.hh"

#include <gtest/gtest.h>

#include <clocale>
#include <sstream>
#include <stdexcept>

namespace gpuscale {
namespace obs {
namespace {

TEST(JsonEscapeTest, EscapesSpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string("x\x01y", 3)), "x\\u0001y");
}

TEST(JsonWriterTest, WritesNestedDocument)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject()
        .key("n").value(3)
        .key("name").value("census")
        .key("ok").value(true)
        .key("none").valueNull()
        .key("xs").beginArray().value(1.5).value(2.5).endArray()
        .key("inner").beginObject().key("k").value(uint64_t{7})
        .endObject()
        .endObject();
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(os.str(),
              "{\"n\":3,\"name\":\"census\",\"ok\":true,\"none\":null,"
              "\"xs\":[1.5,2.5],\"inner\":{\"k\":7}}");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginArray()
        .value(std::numeric_limits<double>::quiet_NaN())
        .value(std::numeric_limits<double>::infinity())
        .endArray();
    EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonParserTest, RoundTripsWriterOutput)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject()
        .key("count").value(42)
        .key("ratio").value(0.25)
        .key("tag").value("a\"b\nc")
        .key("list").beginArray().value(1).value(2).value(3).endArray()
        .endObject();

    const JsonValue v = parseJson(os.str());
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.at("count").number, 42.0);
    EXPECT_DOUBLE_EQ(v.at("ratio").number, 0.25);
    EXPECT_EQ(v.at("tag").str, "a\"b\nc");
    ASSERT_EQ(v.at("list").array.size(), 3u);
    EXPECT_DOUBLE_EQ(v.at("list").array[2].number, 3.0);
}

TEST(JsonParserTest, ParsesScalarsAndWhitespace)
{
    EXPECT_TRUE(parseJson("  null ").isNull());
    EXPECT_TRUE(parseJson("true").boolean);
    EXPECT_FALSE(parseJson("false").boolean);
    EXPECT_DOUBLE_EQ(parseJson("-1.5e3").number, -1500.0);
    EXPECT_EQ(parseJson("\"x\"").str, "x");
    EXPECT_TRUE(parseJson("{}").isObject());
    EXPECT_TRUE(parseJson("[]").isArray());
}

TEST(JsonParserTest, DecodesEscapes)
{
    EXPECT_EQ(parseJson("\"a\\n\\t\\\"\\\\b\"").str, "a\n\t\"\\b");
    EXPECT_EQ(parseJson("\"\\u0041\"").str, "A");
}

TEST(JsonParserTest, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson(""), std::runtime_error);
    EXPECT_THROW(parseJson("{"), std::runtime_error);
    EXPECT_THROW(parseJson("[1,]"), std::runtime_error);
    EXPECT_THROW(parseJson("{\"a\" 1}"), std::runtime_error);
    EXPECT_THROW(parseJson("tru"), std::runtime_error);
    EXPECT_THROW(parseJson("{} trailing"), std::runtime_error);
    EXPECT_THROW(parseJson("\"unterminated"), std::runtime_error);
}

TEST(JsonLocaleTest, NumbersRoundTripUnderCommaDecimalLocale)
{
    // Under a comma-decimal LC_NUMERIC locale, printf-family "%g"
    // emits "0,25" (invalid JSON) and strtod rejects "0.25"; the
    // writer/parser must be locale-independent.
    const char *prev = std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
    if (prev == nullptr)
        GTEST_SKIP() << "de_DE.UTF-8 locale not installed";

    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject()
        .key("ratio").value(0.25)
        .key("big").value(1.5e6)
        .key("neg").value(-3.75)
        .endObject();
    const std::string doc = os.str();
    EXPECT_EQ(doc, "{\"ratio\":0.25,\"big\":1500000,\"neg\":-3.75}");

    const JsonValue v = parseJson(doc);
    EXPECT_DOUBLE_EQ(v.at("ratio").number, 0.25);
    EXPECT_DOUBLE_EQ(v.at("big").number, 1.5e6);
    EXPECT_DOUBLE_EQ(v.at("neg").number, -3.75);
    EXPECT_DOUBLE_EQ(parseJson("-1.5e3").number, -1500.0);

    std::setlocale(LC_NUMERIC, "C");
}

TEST(JsonValueTest, FindAndAt)
{
    const JsonValue v = parseJson("{\"a\": {\"b\": 2}}");
    EXPECT_NE(v.find("a"), nullptr);
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_DOUBLE_EQ(v.at("a").at("b").number, 2.0);
    EXPECT_EQ(v.at("a").find("b")->find("c"), nullptr);
}

} // namespace
} // namespace obs
} // namespace gpuscale
