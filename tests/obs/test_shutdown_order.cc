/**
 * @file
 * Shutdown-ordering tests: the races a draining gpuscaled walks
 * through every SIGTERM.  The exporter's final flush must observe
 * counters bumped right up to stop(); process exit with a parallel
 * region still in flight must tear the thread pool down cleanly
 * (drain the task, join the workers, no crash); and an abort with
 * both the exporter and the flight recorder live must still produce
 * the black-box dump from inside the crash handler.
 *
 * The fork-based tests run first and fork before this process
 * creates any threads (forking a multi-threaded process can clone a
 * held malloc lock into the child).
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "harness/parallel.hh"
#include "obs/exporter.hh"
#include "obs/flight_recorder.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "support/temp_dir.hh"

namespace gpuscale {
namespace obs {
namespace {

TEST(ShutdownOrderForked, ExitWithInflightParallelForTearsDownCleanly)
{
    const pid_t child = fork();
    ASSERT_NE(child, -1);
    if (child == 0) {
        // Child: leave a parallel region in flight on a detached
        // thread, then exit while it runs.  Static teardown must
        // drain the task and join the pool workers; a crash or hang
        // here is exactly the drain race this guards against.
        std::thread([] {
            harness::parallelFor(20000, [](size_t) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(5));
            });
        }).detach();
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        std::exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status))
        << "child died of signal " << WTERMSIG(status);
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ShutdownOrderForked, AbortWithLiveExporterStillDumpsBlackBox)
{
    test::ScopedTempDir dir("shutdown_abort");
    const std::string ring = dir.sub("flight.ring");
    const std::string json = dir.sub("flight.json");
    const std::string jsonl = dir.sub("metrics.jsonl");

    const pid_t child = fork();
    ASSERT_NE(child, -1);
    if (child == 0) {
        // Child: both observers live — the exporter's flusher thread
        // must not keep the crash handler from writing the dump.
        if (!FlightRecorder::start(ring))
            _exit(10);
        FlightRecorder::installCrashDump(json);
        if (!MetricsExporter::start(jsonl, 5))
            _exit(11);
        Registry::instance().counter("shutdown.abort.test").inc();
        FlightRecorder::recordSpan("shutdown/abort-marker", 1.0, 2.0);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        std::abort();
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGABRT);

    std::ifstream in(json);
    ASSERT_TRUE(in.is_open()) << "no crash dump at " << json;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const JsonValue doc = parseJson(text);
    ASSERT_TRUE(doc.isObject());
    EXPECT_NE(text.find("shutdown/abort-marker"), std::string::npos);
}

TEST(ShutdownOrder, ExporterFinalFlushSeesLastIncrement)
{
    test::ScopedTempDir dir("shutdown_flush");
    const std::string jsonl = dir.sub("metrics.jsonl");

    auto &counter =
        Registry::instance().counter("shutdown.final.flush.test");
    // A one-minute interval: no periodic tick can fire during the
    // test, so any snapshot of the increments below must come from
    // stop()'s final flush.
    ASSERT_TRUE(MetricsExporter::start(jsonl, 60000));
    counter.inc(41);
    counter.inc();
    MetricsExporter::stop();
    ASSERT_FALSE(MetricsExporter::active());

    std::ifstream in(jsonl);
    ASSERT_TRUE(in.is_open());
    std::string line, last;
    while (std::getline(in, line)) {
        if (!line.empty())
            last = line;
    }
    ASSERT_FALSE(last.empty());
    const JsonValue doc = parseJson(last);
    ASSERT_TRUE(doc.isObject());
    EXPECT_NE(last.find("\"shutdown.final.flush.test\":42"),
              std::string::npos)
        << last;
}

} // namespace
} // namespace obs
} // namespace gpuscale
