/**
 * @file
 * Unit tests for the trace emitter: the emitted file is valid Chrome
 * trace-event JSON, spans nest, and concurrent recording is safe.
 */

#include "obs/trace.hh"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.hh"

namespace gpuscale {
namespace obs {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is) << path;
    std::stringstream buffer;
    buffer << is.rdbuf();
    return buffer.str();
}

/** All "X" span events, keyed by name, from a parsed trace. */
std::vector<const JsonValue *>
spanEvents(const JsonValue &doc)
{
    std::vector<const JsonValue *> spans;
    for (const auto &ev : doc.at("traceEvents").array) {
        if (ev.at("ph").str == "X")
            spans.push_back(&ev);
    }
    return spans;
}

TEST(TraceTest, InactiveSessionRecordsNothing)
{
    EXPECT_FALSE(TraceSession::active());
    {
        GPUSCALE_TRACE_SCOPE("ignored");
    }
    EXPECT_EQ(TraceSession::stop(), 0u);
}

TEST(TraceTest, EmitsParseableNestedSpans)
{
    const std::string path = tempPath("trace_nested.json");
    TraceSession::start(path);
    ASSERT_TRUE(TraceSession::active());
    {
        GPUSCALE_TRACE_SCOPE("outer");
        {
            GPUSCALE_TRACE_SCOPE("inner");
        }
    }
    const size_t written = TraceSession::stop();
    EXPECT_FALSE(TraceSession::active());
    EXPECT_EQ(written, 2u);

    const JsonValue doc = parseJson(slurp(path));
    const auto spans = spanEvents(doc);
    ASSERT_EQ(spans.size(), 2u);

    const JsonValue *outer = nullptr, *inner = nullptr;
    for (const auto *s : spans) {
        if (s->at("name").str == "outer")
            outer = s;
        if (s->at("name").str == "inner")
            inner = s;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);

    // Spans carry the complete-event schema...
    for (const auto *s : {outer, inner}) {
        EXPECT_EQ(s->at("cat").str, "gpuscale");
        EXPECT_GE(s->at("dur").number, 0.0);
        EXPECT_GE(s->at("ts").number, 0.0);
        EXPECT_GT(s->at("tid").number, 0.0);
    }
    // ...and the inner interval is contained in the outer one.
    EXPECT_GE(inner->at("ts").number, outer->at("ts").number);
    EXPECT_LE(inner->at("ts").number + inner->at("dur").number,
              outer->at("ts").number + outer->at("dur").number + 1e-3);
}

TEST(TraceTest, ThreadsGetDistinctTracks)
{
    const std::string path = tempPath("trace_threads.json");
    TraceSession::start(path);

    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([]() {
            for (int i = 0; i < 50; ++i) {
                GPUSCALE_TRACE_SCOPE("worker-span");
            }
        });
    }
    for (auto &t : threads)
        t.join();
    const size_t written = TraceSession::stop();
    EXPECT_EQ(written, kThreads * 50u);

    const JsonValue doc = parseJson(slurp(path));
    std::set<double> tids;
    for (const auto *s : spanEvents(doc))
        tids.insert(s->at("tid").number);
    EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
}

TEST(TraceTest, SecondSessionReusesBuffers)
{
    const std::string path = tempPath("trace_second.json");
    TraceSession::start(path);
    {
        GPUSCALE_TRACE_SCOPE("round-two");
    }
    EXPECT_EQ(TraceSession::stop(), 1u);

    const JsonValue doc = parseJson(slurp(path));
    ASSERT_EQ(spanEvents(doc).size(), 1u);
    EXPECT_EQ(spanEvents(doc)[0]->at("name").str, "round-two");
}

} // namespace
} // namespace obs
} // namespace gpuscale
