/**
 * @file
 * Tests for the JSONL metrics exporter: every emitted line must
 * round-trip through the locale-safe JSON parser, counters and
 * histogram counts must be per-line deltas, and gauges absolute.
 *
 * Ticks are driven deterministically with MetricsExporter::flushNow()
 * under an interval long enough that the background flusher never
 * fires on its own; stop() contributes the final line.
 */

#include "obs/exporter.hh"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/sharded.hh"
#include "support/temp_dir.hh"

namespace gpuscale {
namespace obs {
namespace {

std::vector<JsonValue>
parseLines(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::vector<JsonValue> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty())
            lines.push_back(parseJson(line));
    }
    return lines;
}

TEST(ExporterTest, JsonlLinesRoundTripWithDeltaSemantics)
{
    test::ScopedTempDir dir("exporter_jsonl");
    const std::string path = dir.sub("metrics.jsonl");

    auto &reg = Registry::instance();
    Counter &c = reg.counter("test.exporter.counter", "test counter");
    Gauge &g = reg.gauge("test.exporter.gauge", "test gauge");
    Histogram &h =
        reg.histogram("test.exporter.hist", "test histogram");
    ShardedCounter &sc = reg.shardedCounter(
        "test.exporter.sharded.counter", "test sharded counter");
    c.reset();
    g.reset();
    h.reset();
    sc.reset();

    // An hour-long interval: only flushNow()/stop() produce lines.
    ASSERT_TRUE(MetricsExporter::start(path, 3600 * 1000));
    EXPECT_TRUE(MetricsExporter::active());
    // A second start is refused, not stacked.
    EXPECT_FALSE(MetricsExporter::start(path, 1));

    c.inc(7);
    sc.inc(3);
    g.set(1.5);
    h.record(2e-6);
    MetricsExporter::flushNow();

    c.inc(5);
    sc.inc(4);
    g.set(0.25);
    h.record(4e-6);
    h.record(8e-6);
    MetricsExporter::flushNow();

    MetricsExporter::stop();
    EXPECT_FALSE(MetricsExporter::active());

    const std::vector<JsonValue> lines = parseLines(path);
    ASSERT_EQ(lines.size(), 3u); // two explicit ticks + stop()'s.

    for (size_t i = 0; i < lines.size(); ++i) {
        const JsonValue &l = lines[i];
        ASSERT_TRUE(l.isObject()) << "line " << i;
        EXPECT_GT(l.at("ts_ms").number, 0.0);
        EXPECT_DOUBLE_EQ(l.at("seq").number,
                         static_cast<double>(i + 1));
    }

    // Counters export deltas: 7 then 5 then 0; the sharded counter
    // rides in the same group (3, 4, 0).
    const char *ctr = "test.exporter.counter";
    const char *sctr = "test.exporter.sharded.counter";
    EXPECT_DOUBLE_EQ(lines[0].at("counters").at(ctr).number, 7.0);
    EXPECT_DOUBLE_EQ(lines[1].at("counters").at(ctr).number, 5.0);
    EXPECT_DOUBLE_EQ(lines[2].at("counters").at(ctr).number, 0.0);
    EXPECT_DOUBLE_EQ(lines[0].at("counters").at(sctr).number, 3.0);
    EXPECT_DOUBLE_EQ(lines[1].at("counters").at(sctr).number, 4.0);

    // Gauges are absolute per line.
    const char *gau = "test.exporter.gauge";
    EXPECT_DOUBLE_EQ(lines[0].at("gauges").at(gau).number, 1.5);
    EXPECT_DOUBLE_EQ(lines[1].at("gauges").at(gau).number, 0.25);

    // Histogram counts are deltas; the statistics are instantaneous.
    const JsonValue &h0 =
        lines[0].at("histograms").at("test.exporter.hist");
    const JsonValue &h1 =
        lines[1].at("histograms").at("test.exporter.hist");
    EXPECT_DOUBLE_EQ(h0.at("count").number, 1.0);
    EXPECT_DOUBLE_EQ(h1.at("count").number, 2.0);
    EXPECT_GT(h1.at("mean").number, h0.at("mean").number);
    EXPECT_GE(h1.at("p99").number, h1.at("p50").number);
}

TEST(ExporterTest, StopWithoutStartIsANoOp)
{
    MetricsExporter::stop();
    EXPECT_FALSE(MetricsExporter::active());
    MetricsExporter::flushNow(); // Must not crash or write anywhere.
}

TEST(ExporterTest, UnopenablePathIsRefused)
{
    EXPECT_FALSE(
        MetricsExporter::start("/nonexistent/dir/metrics.jsonl", 10));
    EXPECT_FALSE(MetricsExporter::active());
}

} // namespace
} // namespace obs
} // namespace gpuscale
