/**
 * @file
 * Unit tests for the metrics registry: concurrent correctness of the
 * instruments and validity of the JSON snapshot.
 */

#include "obs/metrics.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/json.hh"

namespace gpuscale {
namespace obs {
namespace {

TEST(CounterTest, ConcurrentIncrementsSumCorrectly)
{
    Counter &c = Registry::instance().counter(
        "test.metrics.concurrent_counter");
    c.reset();

    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c]() {
            for (uint64_t i = 0; i < kPerThread; ++i)
                c.inc();
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndConcurrentAdd)
{
    Gauge &g = Registry::instance().gauge("test.metrics.gauge");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);

    g.reset();
    constexpr int kThreads = 4;
    constexpr int kAdds = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&g]() {
            for (int i = 0; i < kAdds; ++i)
                g.add(1.0);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_DOUBLE_EQ(g.value(), kThreads * kAdds);
}

TEST(HistogramTest, BucketIndexIsMonotone)
{
    size_t prev = 0;
    for (double v = 1e-10; v < 1e4; v *= 1.7) {
        const size_t idx = Histogram::bucketIndex(v);
        EXPECT_GE(idx, prev);
        prev = idx;
    }
    EXPECT_EQ(Histogram::bucketIndex(0.0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(-1.0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1e9),
              Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, StatisticsAndPercentiles)
{
    Histogram &h =
        Registry::instance().histogram("test.metrics.histogram");
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);

    // 1000 samples at 1 us, 100 at 1 ms: p50 must sit at ~1 us and
    // p99+ at ~1 ms, within log-bucket resolution.
    for (int i = 0; i < 1000; ++i)
        h.record(1e-6);
    for (int i = 0; i < 100; ++i)
        h.record(1e-3);

    EXPECT_EQ(h.count(), 1100u);
    EXPECT_NEAR(h.mean(), (1000 * 1e-6 + 100 * 1e-3) / 1100, 1e-9);
    EXPECT_DOUBLE_EQ(h.minSample(), 1e-6);
    EXPECT_DOUBLE_EQ(h.maxSample(), 1e-3);
    EXPECT_NEAR(h.percentile(50), 1e-6, 0.5e-6);
    EXPECT_NEAR(h.percentile(99), 1e-3, 0.5e-3);
    // Percentiles never leave the observed range.
    EXPECT_GE(h.percentile(0), 1e-6);
    EXPECT_LE(h.percentile(100), 1e-3);
}

TEST(HistogramTest, ConcurrentRecordsAllCounted)
{
    Histogram &h = Registry::instance().histogram(
        "test.metrics.concurrent_histogram");
    h.reset();

    constexpr int kThreads = 8;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t]() {
            for (int i = 0; i < kPerThread; ++i)
                h.record(1e-6 * (t + 1));
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(h.count(),
              static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(h.minSample(), 1e-6);
    EXPECT_DOUBLE_EQ(h.maxSample(), 8e-6);
    const double expected_sum =
        kPerThread * 1e-6 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8);
    EXPECT_NEAR(h.sum(), expected_sum, expected_sum * 1e-9);
}

TEST(RegistryTest, ReturnsStableReferences)
{
    Counter &a = Registry::instance().counter("test.metrics.stable");
    Counter &b = Registry::instance().counter("test.metrics.stable");
    EXPECT_EQ(&a, &b);
    EXPECT_FALSE(Registry::instance().empty());
}

TEST(RegistryTest, SnapshotJsonParsesAndCarriesValues)
{
    auto &reg = Registry::instance();
    reg.counter("test.snapshot.counter", "a counter").inc(7);
    reg.gauge("test.snapshot.gauge", "a gauge").set(1.5);
    Histogram &h = reg.histogram("test.snapshot.hist", "a histogram");
    h.reset();
    h.record(2e-6);

    const JsonValue v = parseJson(reg.snapshotJson());
    ASSERT_TRUE(v.isObject());
    EXPECT_GE(v.at("counters").at("test.snapshot.counter").number, 7.0);
    EXPECT_DOUBLE_EQ(v.at("gauges").at("test.snapshot.gauge").number,
                     1.5);
    const JsonValue &hist = v.at("histograms").at("test.snapshot.hist");
    EXPECT_GE(hist.at("count").number, 1.0);
    EXPECT_GT(hist.at("p50").number, 0.0);
    EXPECT_GE(hist.at("p99").number, hist.at("p50").number);
    EXPECT_GE(hist.at("max").number, hist.at("min").number);
}

TEST(RegistryTest, SnapshotTableHasRowPerInstrument)
{
    auto &reg = Registry::instance();
    reg.counter("test.table.counter").inc();
    reg.gauge("test.table.gauge").set(1);
    reg.histogram("test.table.hist").record(1e-6);

    const TextTable t = reg.snapshotTable();
    EXPECT_EQ(t.numColumns(), 4u);
    EXPECT_GE(t.numRows(), 3u);
    // Renders without panicking and mentions a known metric.
    EXPECT_NE(t.render().find("test.table.counter"), std::string::npos);
}

} // namespace
} // namespace obs
} // namespace gpuscale
