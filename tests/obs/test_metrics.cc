/**
 * @file
 * Unit tests for the metrics registry: concurrent correctness of the
 * instruments and validity of the JSON snapshot.
 */

#include "obs/metrics.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.hh"

namespace gpuscale {
namespace obs {
namespace {

TEST(CounterTest, ConcurrentIncrementsSumCorrectly)
{
    Counter &c = Registry::instance().counter(
        "test.metrics.concurrent_counter");
    c.reset();

    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c]() {
            for (uint64_t i = 0; i < kPerThread; ++i)
                c.inc();
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndConcurrentAdd)
{
    Gauge &g = Registry::instance().gauge("test.metrics.gauge");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);

    g.reset();
    constexpr int kThreads = 4;
    constexpr int kAdds = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&g]() {
            for (int i = 0; i < kAdds; ++i)
                g.add(1.0);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_DOUBLE_EQ(g.value(), kThreads * kAdds);
}

TEST(HistogramTest, BucketIndexIsMonotone)
{
    size_t prev = 0;
    for (double v = 1e-10; v < 1e4; v *= 1.7) {
        const size_t idx = Histogram::bucketIndex(v);
        EXPECT_GE(idx, prev);
        prev = idx;
    }
    EXPECT_EQ(Histogram::bucketIndex(0.0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(-1.0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1e9),
              Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, StatisticsAndPercentiles)
{
    Histogram &h =
        Registry::instance().histogram("test.metrics.histogram");
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);

    // 1000 samples at 1 us, 100 at 1 ms: p50 must sit at ~1 us and
    // p99+ at ~1 ms, within log-bucket resolution.
    for (int i = 0; i < 1000; ++i)
        h.record(1e-6);
    for (int i = 0; i < 100; ++i)
        h.record(1e-3);

    EXPECT_EQ(h.count(), 1100u);
    EXPECT_NEAR(h.mean(), (1000 * 1e-6 + 100 * 1e-3) / 1100, 1e-9);
    EXPECT_DOUBLE_EQ(h.minSample(), 1e-6);
    EXPECT_DOUBLE_EQ(h.maxSample(), 1e-3);
    EXPECT_NEAR(h.percentile(50), 1e-6, 0.5e-6);
    EXPECT_NEAR(h.percentile(99), 1e-3, 0.5e-3);
    // Percentiles never leave the observed range.
    EXPECT_GE(h.percentile(0), 1e-6);
    EXPECT_LE(h.percentile(100), 1e-3);
}

TEST(HistogramTest, EmptyStateIsDistinguishableFromZeroSample)
{
    Histogram &h =
        Registry::instance().histogram("test.metrics.empty_sentinel");
    h.reset();

    // While empty: explicit empty() plus NaN extremes — not the 0.0
    // that a genuine zero-valued sample would produce.
    EXPECT_TRUE(h.empty());
    EXPECT_TRUE(std::isnan(h.minSample()));
    EXPECT_TRUE(std::isnan(h.maxSample()));

    // The JSON snapshot keeps the distinction: NaN serializes as
    // null, so downstream readers never mistake "no samples" for "a
    // zero sample".
    const JsonValue before = parseJson(
        Registry::instance().snapshotJson());
    const JsonValue &empty_hist =
        before.at("histograms").at("test.metrics.empty_sentinel");
    EXPECT_TRUE(empty_hist.at("min").isNull());
    EXPECT_TRUE(empty_hist.at("max").isNull());

    // One record(0.0): no longer empty, extremes exactly 0.0.
    h.record(0.0);
    EXPECT_FALSE(h.empty());
    EXPECT_DOUBLE_EQ(h.minSample(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 0.0);
    const JsonValue after = parseJson(
        Registry::instance().snapshotJson());
    const JsonValue &zero_hist =
        after.at("histograms").at("test.metrics.empty_sentinel");
    EXPECT_TRUE(zero_hist.at("min").isNumber());
    EXPECT_DOUBLE_EQ(zero_hist.at("min").number, 0.0);

    // reset() restores the empty sentinel, not a zero floor.
    h.reset();
    EXPECT_TRUE(h.empty());
    EXPECT_TRUE(std::isnan(h.minSample()));
}

TEST(HistogramTest, PercentileEdgeCases)
{
    Histogram &h = Registry::instance().histogram(
        "test.metrics.percentile_edges");
    h.reset();

    // Empty histogram: every percentile is the 0 sentinel.
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 0.0);

    // Single sample: every percentile collapses to that sample (the
    // clamp to [min, max] makes this exact, not bucket-resolution).
    h.record(3e-6);
    for (const double p : {0.0, 50.0, 99.9, 100.0})
        EXPECT_DOUBLE_EQ(h.percentile(p), 3e-6) << "p=" << p;

    // With samples spanning buckets, p=0 and p=100 stay inside the
    // observed range (bucket midpoints, clamped to [min, max]).
    h.record(7e-4);
    EXPECT_GE(h.percentile(0), 3e-6);
    EXPECT_LT(h.percentile(0), 7e-4);
    EXPECT_GT(h.percentile(100), 3e-6);
    EXPECT_LE(h.percentile(100), 7e-4);
    EXPECT_LE(h.percentile(0), h.percentile(100));

    // Overflow bucket: samples at/above kHi land in the last bucket
    // and percentiles stay clamped to the true max, never inf.
    h.reset();
    h.record(Histogram::kHi * 10); // 10,000 s: overflow bucket.
    EXPECT_EQ(Histogram::bucketIndex(Histogram::kHi * 10),
              Histogram::kNumBuckets - 1);
    EXPECT_DOUBLE_EQ(h.percentile(50), Histogram::kHi * 10);
    EXPECT_DOUBLE_EQ(h.percentile(100), Histogram::kHi * 10);
    EXPECT_TRUE(std::isfinite(h.percentile(99)));
}

TEST(HistogramTest, ConcurrentRecordsAllCounted)
{
    Histogram &h = Registry::instance().histogram(
        "test.metrics.concurrent_histogram");
    h.reset();

    constexpr int kThreads = 8;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t]() {
            for (int i = 0; i < kPerThread; ++i)
                h.record(1e-6 * (t + 1));
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(h.count(),
              static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(h.minSample(), 1e-6);
    EXPECT_DOUBLE_EQ(h.maxSample(), 8e-6);
    const double expected_sum =
        kPerThread * 1e-6 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8);
    EXPECT_NEAR(h.sum(), expected_sum, expected_sum * 1e-9);
}

TEST(RegistryTest, ReturnsStableReferences)
{
    Counter &a = Registry::instance().counter("test.metrics.stable");
    Counter &b = Registry::instance().counter("test.metrics.stable");
    EXPECT_EQ(&a, &b);
    EXPECT_FALSE(Registry::instance().empty());
}

TEST(RegistryTest, SnapshotJsonParsesAndCarriesValues)
{
    auto &reg = Registry::instance();
    reg.counter("test.snapshot.counter", "a counter").inc(7);
    reg.gauge("test.snapshot.gauge", "a gauge").set(1.5);
    Histogram &h = reg.histogram("test.snapshot.hist", "a histogram");
    h.reset();
    h.record(2e-6);

    const JsonValue v = parseJson(reg.snapshotJson());
    ASSERT_TRUE(v.isObject());
    EXPECT_GE(v.at("counters").at("test.snapshot.counter").number, 7.0);
    EXPECT_DOUBLE_EQ(v.at("gauges").at("test.snapshot.gauge").number,
                     1.5);
    const JsonValue &hist = v.at("histograms").at("test.snapshot.hist");
    EXPECT_GE(hist.at("count").number, 1.0);
    EXPECT_GT(hist.at("p50").number, 0.0);
    EXPECT_GE(hist.at("p99").number, hist.at("p50").number);
    EXPECT_GE(hist.at("max").number, hist.at("min").number);
}

TEST(RegistryTest, ExpositionRendersPrometheusText)
{
    auto &reg = Registry::instance();
    reg.counter("test.expo.counter", "an exposition counter").inc(9);
    reg.gauge("test.expo.gauge", "an exposition gauge").set(2.5);
    Histogram &h =
        reg.histogram("test.expo.hist", "an exposition histogram");
    h.reset();
    h.record(1e-6);
    Histogram &empty_h =
        reg.histogram("test.expo.empty_hist", "never recorded");
    empty_h.reset();

    std::ostringstream os;
    reg.writeExposition(os);
    const std::string text = os.str();

    // Names are prefixed and dot-mapped; counters carry HELP/TYPE.
    EXPECT_NE(text.find("# HELP gpuscale_test_expo_counter "
                        "an exposition counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE gpuscale_test_expo_counter counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("gpuscale_test_expo_counter 9\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE gpuscale_test_expo_gauge gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("gpuscale_test_expo_gauge 2.5\n"),
              std::string::npos);

    // Histograms render as summaries with quantiles + _sum/_count.
    EXPECT_NE(text.find("# TYPE gpuscale_test_expo_hist summary\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("gpuscale_test_expo_hist{quantile=\"0.5\"} "),
        std::string::npos);
    EXPECT_NE(text.find("gpuscale_test_expo_hist_count 1\n"),
              std::string::npos);

    // An empty histogram omits quantiles but still exports _count=0.
    EXPECT_EQ(
        text.find("gpuscale_test_expo_empty_hist{quantile"),
        std::string::npos);
    EXPECT_NE(text.find("gpuscale_test_expo_empty_hist_count 0\n"),
              std::string::npos);
}

TEST(RegistryTest, SnapshotTableHasRowPerInstrument)
{
    auto &reg = Registry::instance();
    reg.counter("test.table.counter").inc();
    reg.gauge("test.table.gauge").set(1);
    reg.histogram("test.table.hist").record(1e-6);

    const TextTable t = reg.snapshotTable();
    EXPECT_EQ(t.numColumns(), 4u);
    EXPECT_GE(t.numRows(), 3u);
    // Renders without panicking and mentions a known metric.
    EXPECT_NE(t.render().find("test.table.counter"), std::string::npos);
}

} // namespace
} // namespace obs
} // namespace gpuscale
