/**
 * @file
 * Unit tests for the progress reporter.
 */

#include "obs/progress.hh"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace gpuscale {
namespace obs {
namespace {

TEST(ProgressTest, CountsTicks)
{
    ProgressReporter p("test", 100, /*enabled=*/false);
    EXPECT_EQ(p.done(), 0u);
    p.tick();
    p.tick(9);
    EXPECT_EQ(p.done(), 10u);
    EXPECT_EQ(p.total(), 100u);
}

TEST(ProgressTest, RenderLineHasCountsAndPercent)
{
    ProgressReporter p("census", 200, /*enabled=*/false);
    p.tick(50);
    const std::string line = p.renderLine();
    EXPECT_NE(line.find("census"), std::string::npos);
    EXPECT_NE(line.find("50/200"), std::string::npos);
    EXPECT_NE(line.find("25.0%"), std::string::npos);
    EXPECT_NE(line.find("/s"), std::string::npos);
}

TEST(ProgressTest, RateIsPositiveAfterWork)
{
    ProgressReporter p("rate", 10, /*enabled=*/false);
    p.tick(5);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_GT(p.ratePerSec(), 0.0);
}

TEST(ProgressTest, ConcurrentTicksAllCounted)
{
    ProgressReporter p("mt", 8 * 10000, /*enabled=*/false);
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&p]() {
            for (int i = 0; i < 10000; ++i)
                p.tick();
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(p.done(), 80000u);
}

TEST(ProgressTest, FinishIsIdempotent)
{
    ProgressReporter p("fin", 2, /*enabled=*/false);
    p.tick(2);
    p.finish();
    p.finish(); // second call must be a no-op
    EXPECT_EQ(p.done(), 2u);
}

TEST(ProgressTest, NothingPaintsAfterTheFinalNewline)
{
    // Late worker ticks racing finish() must never repaint after the
    // final line's newline — that smears a half-line into whatever
    // the tool prints next.  The final paint latches; everything a
    // racing tick would paint is dropped.
    testing::internal::CaptureStderr();
    {
        ProgressReporter p("race", 4 * 2000, /*enabled=*/true,
                           /*interval_ms=*/1);
        std::vector<std::thread> threads;
        for (int t = 0; t < 4; ++t) {
            threads.emplace_back([&p]() {
                for (int i = 0; i < 2000; ++i)
                    p.tick();
            });
        }
        // Cut the reporter off while workers are mid-flight.
        p.finish();
        for (auto &t : threads)
            t.join();
    }
    const std::string err = testing::internal::GetCapturedStderr();
    ASSERT_FALSE(err.empty());
    EXPECT_EQ(err.back(), '\n');
    // Exactly one newline: the final line's.
    EXPECT_EQ(err.find('\n'), err.size() - 1);
}

TEST(ProgressTest, ZeroTotalDoesNotDivide)
{
    ProgressReporter p("empty", 0, /*enabled=*/false);
    const std::string line = p.renderLine();
    EXPECT_NE(line.find("0/0"), std::string::npos);
}

} // namespace
} // namespace obs
} // namespace gpuscale
