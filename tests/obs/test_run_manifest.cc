/**
 * @file
 * Unit tests for the run-manifest writer.
 */

#include "obs/run_manifest.hh"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "obs/json.hh"
#include "obs/metrics.hh"

namespace gpuscale {
namespace obs {
namespace {

RunManifest
sampleManifest()
{
    RunManifest m;
    m.command = "census";
    m.argv = {"census", "--progress"};
    m.model = "analytic";
    m.seed = 42;
    m.threads = 4;
    m.num_kernels = 267;
    m.num_configs = 891;
    m.num_estimates = 267 * 891;
    m.cu_values = {4, 8, 12};
    m.core_clks_mhz = {200, 300};
    m.mem_clks_mhz = {150, 287.5};
    m.extra["report"] = "classifications.csv";
    return m;
}

TEST(RunManifestTest, JsonCarriesAllFields)
{
    RunManifest m = sampleManifest();
    const ManifestTimer timer;
    timer.finalize(m);

    const JsonValue v = parseJson(renderManifestJson(m));
    EXPECT_DOUBLE_EQ(v.at("schema_version").number, 1.0);
    EXPECT_EQ(v.at("tool").str, "gpuscale");
    EXPECT_EQ(v.at("command").str, "census");
    ASSERT_EQ(v.at("argv").array.size(), 2u);
    EXPECT_EQ(v.at("argv").array[1].str, "--progress");
    EXPECT_EQ(v.at("model").str, "analytic");
    EXPECT_DOUBLE_EQ(v.at("seed").number, 42.0);
    EXPECT_DOUBLE_EQ(v.at("threads").number, 4.0);
    EXPECT_GE(v.at("wall_time_s").number, 0.0);
    EXPECT_GE(v.at("cpu_time_s").number, 0.0);

    const JsonValue &space = v.at("config_space");
    EXPECT_EQ(space.at("cu_values").array.size(), 3u);
    EXPECT_DOUBLE_EQ(space.at("mem_clks_mhz").array[1].number, 287.5);
    EXPECT_DOUBLE_EQ(space.at("num_configs").number, 891.0);

    EXPECT_DOUBLE_EQ(v.at("workload").at("num_kernels").number, 267.0);
    EXPECT_EQ(v.at("extra").at("report").str, "classifications.csv");

    // started_at is ISO-8601 UTC: "YYYY-MM-DDTHH:MM:SSZ".
    const std::string &ts = v.at("started_at").str;
    ASSERT_EQ(ts.size(), 20u);
    EXPECT_EQ(ts[4], '-');
    EXPECT_EQ(ts[10], 'T');
    EXPECT_EQ(ts.back(), 'Z');
}

TEST(RunManifestTest, EmbedsMetricsSnapshotWhenAsked)
{
    Registry::instance()
        .counter("test.manifest.counter")
        .inc(3);

    const JsonValue with =
        parseJson(renderManifestJson(sampleManifest(), true));
    ASSERT_NE(with.find("metrics"), nullptr);
    EXPECT_GE(with.at("metrics")
                  .at("counters")
                  .at("test.manifest.counter")
                  .number,
              3.0);

    const JsonValue without =
        parseJson(renderManifestJson(sampleManifest(), false));
    EXPECT_EQ(without.find("metrics"), nullptr);
}

TEST(RunManifestTest, WritesFile)
{
    const std::string path =
        ::testing::TempDir() + "/manifest_test.json";
    writeManifest(sampleManifest(), path);

    std::ifstream is(path);
    ASSERT_TRUE(is);
    std::stringstream buffer;
    buffer << is.rdbuf();
    const JsonValue v = parseJson(buffer.str());
    EXPECT_EQ(v.at("command").str, "census");
}

TEST(RunManifestTest, ManifestPathConvention)
{
    EXPECT_EQ(manifestPathFor("classifications.csv"),
              "classifications.manifest.json");
    EXPECT_EQ(manifestPathFor("out/report.csv"),
              "out/report.manifest.json");
    EXPECT_EQ(manifestPathFor("plain"), "plain.manifest.json");
    EXPECT_EQ(manifestPathFor("dir.d/plain"),
              "dir.d/plain.manifest.json");
}

} // namespace
} // namespace obs
} // namespace gpuscale
