/**
 * @file
 * Differential proof for the batched census engine.
 *
 * The batched AnalyticModel::evaluateGrid() hoists grid-invariant
 * work out of the per-configuration loop; the scalar estimate() path
 * is the oracle.  These tests drive both over every zoo kernel and
 * every paper-grid configuration (267 x 891 points) and require
 * bitwise-identical runtimes — not approximately equal, identical —
 * plus identical taxonomy classes end-to-end.  Any hoisting mistake
 * that reorders floating-point arithmetic fails here.
 */

#include <gtest/gtest.h>

#include "gpu/analytic_model.hh"
#include "gpu/config_grid.hh"
#include "harness/noise.hh"
#include "scaling/config_space.hh"
#include "scaling/surface.hh"
#include "scaling/taxonomy.hh"
#include "workloads/archetypes.hh"
#include "workloads/registry.hh"

namespace gpuscale {
namespace {

/**
 * A model that inherits the scalar-walk evaluateGrid() default, so
 * the PerfModel base implementation itself is under test too.
 */
class ScalarOnlyModel : public gpu::PerfModel
{
  public:
    gpu::KernelPerf
    estimate(const gpu::KernelDesc &kernel,
             const gpu::GpuConfig &cfg) const override
    {
        return inner_.estimate(kernel, cfg);
    }

    std::string name() const override { return "scalar-only"; }

  private:
    gpu::AnalyticModel inner_;
};

TEST(GridDifferentialTest, BatchedMatchesScalarBitwiseAllKernels)
{
    const gpu::AnalyticModel model;
    const auto space = scaling::ConfigSpace::paperGrid();
    const gpu::ConfigGrid grid = space.grid();
    const auto kernels =
        workloads::WorkloadRegistry::instance().allKernels();
    ASSERT_EQ(kernels.size(), 267u);
    ASSERT_EQ(grid.size(), 891u);

    size_t points_checked = 0;
    for (const auto *kernel : kernels) {
        const auto batched = model.evaluateGrid(*kernel, grid);
        ASSERT_EQ(batched.size(), grid.size()) << kernel->name;
        for (size_t i = 0; i < grid.size(); ++i) {
            const auto idx = space.unflatten(i);
            const gpu::KernelPerf scalar =
                model.estimate(*kernel, space.at(i));
            // EXPECT_EQ on doubles is exact bit-for-bit comparison
            // (modulo -0.0 == 0.0, which never arises for runtimes).
            ASSERT_EQ(batched[i].time_s, scalar.time_s)
                << kernel->name << " at flat=" << i << " cu="
                << idx.cu << " core=" << idx.core << " mem=" << idx.mem;
            ASSERT_EQ(batched[i].kernel_time_s, scalar.kernel_time_s)
                << kernel->name << " at flat=" << i;
            ASSERT_EQ(batched[i].bound, scalar.bound)
                << kernel->name << " at flat=" << i;
            ++points_checked;
        }
    }
    EXPECT_EQ(points_checked, 267u * 891u);
}

TEST(GridDifferentialTest, PerPointFieldsMatchOnSpotKernels)
{
    // The runtime check above covers every point; the full KernelPerf
    // surface (per-resource terms, occupancy, rates) is spot-checked
    // on a few structurally distinct kernels to keep runtime sane.
    const gpu::AnalyticModel model;
    const auto space = scaling::ConfigSpace::paperGrid();
    const gpu::ConfigGrid grid = space.grid();
    const auto &registry = workloads::WorkloadRegistry::instance();

    for (const char *name :
         {"rodinia/hotspot/calculate_temp", "shoc/reduction/reduce_stage",
          "parboil/sgemm/sgemm_nt"}) {
        const auto *kernel = registry.findKernel(name);
        ASSERT_NE(kernel, nullptr) << name;
        const auto batched = model.evaluateGrid(*kernel, grid);
        for (size_t i = 0; i < grid.size(); ++i) {
            const gpu::KernelPerf s = model.estimate(*kernel,
                                                     space.at(i));
            const gpu::KernelPerf &b = batched[i];
            ASSERT_EQ(b.t_compute, s.t_compute) << name << " " << i;
            ASSERT_EQ(b.t_lds, s.t_lds) << name << " " << i;
            ASSERT_EQ(b.t_l1, s.t_l1) << name << " " << i;
            ASSERT_EQ(b.t_l2, s.t_l2) << name << " " << i;
            ASSERT_EQ(b.t_dram, s.t_dram) << name << " " << i;
            ASSERT_EQ(b.t_atomic, s.t_atomic) << name << " " << i;
            ASSERT_EQ(b.t_latency, s.t_latency) << name << " " << i;
            ASSERT_EQ(b.t_launch, s.t_launch) << name << " " << i;
            ASSERT_EQ(b.t_serial, s.t_serial) << name << " " << i;
            ASSERT_EQ(b.achieved_gflops, s.achieved_gflops)
                << name << " " << i;
            ASSERT_EQ(b.imbalance_factor, s.imbalance_factor)
                << name << " " << i;
            ASSERT_EQ(b.occupancy.active_waves, s.occupancy.active_waves)
                << name << " " << i;
        }
    }
}

TEST(GridDifferentialTest, TaxonomyClassesIdenticalEndToEnd)
{
    // Classify every kernel from scalar-built and batched-built
    // surfaces; the taxonomy must agree kernel-for-kernel.
    const gpu::AnalyticModel model;
    const auto space = scaling::ConfigSpace::paperGrid();
    const gpu::ConfigGrid grid = space.grid();
    const auto kernels =
        workloads::WorkloadRegistry::instance().allKernels();

    for (const auto *kernel : kernels) {
        std::vector<double> scalar_rt(space.size());
        for (size_t i = 0; i < space.size(); ++i)
            scalar_rt[i] = model.estimate(*kernel, space.at(i)).time_s;
        const auto batched = model.evaluateGrid(*kernel, grid);
        std::vector<double> batched_rt(batched.size());
        for (size_t i = 0; i < batched.size(); ++i)
            batched_rt[i] = batched[i].time_s;

        const auto cls_scalar = scaling::classifySurface(
            scaling::ScalingSurface(kernel->name, space, scalar_rt));
        const auto cls_batched = scaling::classifySurface(
            scaling::ScalingSurface(kernel->name, space, batched_rt));
        EXPECT_EQ(cls_scalar.cls, cls_batched.cls) << kernel->name;
    }
}

TEST(GridDifferentialTest, DefaultEvaluateGridIsTheScalarOracle)
{
    const ScalarOnlyModel scalar_only;
    const gpu::AnalyticModel analytic;
    const auto space = scaling::ConfigSpace::testGrid();
    const gpu::ConfigGrid grid = space.grid();
    const auto *kernel =
        workloads::WorkloadRegistry::instance().findKernel(
            "rodinia/hotspot/calculate_temp");
    ASSERT_NE(kernel, nullptr);

    // The base-class default must itself match per-point estimates in
    // flatten order, and agree with the batched override bitwise.
    const auto defaults = scalar_only.evaluateGrid(*kernel, grid);
    const auto batched = analytic.evaluateGrid(*kernel, grid);
    ASSERT_EQ(defaults.size(), grid.size());
    for (size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(defaults[i].time_s,
                  scalar_only.estimate(*kernel, space.at(i)).time_s);
        EXPECT_EQ(defaults[i].time_s, batched[i].time_s);
    }
}

TEST(GridDifferentialTest, NoisyBatchedMatchesNoisyScalar)
{
    // The decorator's batched path must replay the exact per-point
    // perturbation of its scalar path.
    const gpu::AnalyticModel inner;
    const harness::NoisyModel noisy(inner, 0.05, 42);
    const auto space = scaling::ConfigSpace::testGrid();
    const gpu::ConfigGrid grid = space.grid();
    const auto *kernel =
        workloads::WorkloadRegistry::instance().findKernel(
            "shoc/reduction/reduce_stage");
    ASSERT_NE(kernel, nullptr);

    const auto batched = noisy.evaluateGrid(*kernel, grid);
    ASSERT_EQ(batched.size(), grid.size());
    for (size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(batched[i].time_s,
                  noisy.estimate(*kernel, space.at(i)).time_s);
    }
}

TEST(GridDifferentialTest, RuntimesHotPathMatchesEvaluateGridAllKernels)
{
    // evaluateGridRuntimes() is what the sweep harness actually calls:
    // the flat vector must be bitwise identical to evaluateGrid()'s
    // time_s for every zoo kernel and every paper-grid point.
    const gpu::AnalyticModel model;
    const gpu::ConfigGrid grid =
        scaling::ConfigSpace::paperGrid().grid();
    const auto kernels =
        workloads::WorkloadRegistry::instance().allKernels();

    for (const auto *kernel : kernels) {
        const auto full = model.evaluateGrid(*kernel, grid);
        const auto runtimes = model.evaluateGridRuntimes(*kernel, grid);
        ASSERT_EQ(runtimes.size(), grid.size()) << kernel->name;
        for (size_t i = 0; i < grid.size(); ++i) {
            ASSERT_EQ(runtimes[i], full[i].time_s)
                << kernel->name << " at flat=" << i;
        }
    }
}

/** An axes-only grid inheriting the default base machine. */
gpu::ConfigGrid
customGrid(std::vector<int> cus, std::vector<double> cores,
           std::vector<double> mems)
{
    gpu::ConfigGrid grid;
    grid.cu_values = std::move(cus);
    grid.core_clks_mhz = std::move(cores);
    grid.mem_clks_mhz = std::move(mems);
    return grid;
}

/**
 * Drive the scalar oracle, evaluateGrid(), and evaluateGridRuntimes()
 * over one grid and require bitwise agreement at every point.
 */
void
expectBitwiseMatch(const gpu::PerfModel &model,
                   const gpu::KernelDesc &kernel,
                   const gpu::ConfigGrid &grid)
{
    const auto batched = model.evaluateGrid(kernel, grid);
    const auto runtimes = model.evaluateGridRuntimes(kernel, grid);
    ASSERT_EQ(batched.size(), grid.size()) << kernel.name;
    ASSERT_EQ(runtimes.size(), grid.size()) << kernel.name;
    for (size_t cu = 0; cu < grid.numCu(); ++cu) {
        for (size_t core = 0; core < grid.numCoreClk(); ++core) {
            for (size_t mem = 0; mem < grid.numMemClk(); ++mem) {
                const size_t i = grid.flatten(cu, core, mem);
                const gpu::KernelPerf scalar =
                    model.estimate(kernel, grid.at(cu, core, mem));
                ASSERT_EQ(batched[i].time_s, scalar.time_s)
                    << kernel.name << " cu=" << cu << " core=" << core
                    << " mem=" << mem;
                ASSERT_EQ(runtimes[i], scalar.time_s)
                    << kernel.name << " cu=" << cu << " core=" << core
                    << " mem=" << mem;
            }
        }
    }
}

TEST(GridDifferentialTest, DegenerateGridsMatchScalarBitwise)
{
    // The paper grid's axis lengths are comfortable; the hoisted SoA
    // walk must also survive the shapes that break loop bookkeeping:
    // a single-point grid, single-point axes in each dimension, and a
    // 1-CU axis (which routes through the serial-machine path used
    // for Amdahl folding).
    const gpu::AnalyticModel model;
    const gpu::KernelDesc kernel = workloads::streaming(
        "diff/degenerate/stream", {.wgs = 512, .wi_per_wg = 256});

    expectBitwiseMatch(model, kernel, customGrid({44}, {1000.0}, {1250.0}));
    expectBitwiseMatch(model, kernel,
                       customGrid({1}, {300.0, 711.0, 1000.0}, {950.0}));
    expectBitwiseMatch(
        model, kernel,
        customGrid({8}, {455.0}, {150.0, 475.0, 925.0, 1375.0}));
    expectBitwiseMatch(model, kernel,
                       customGrid({1, 4}, {400.0, 800.0}, {500.0}));
}

TEST(GridDifferentialTest, IrregularAxisLengthsMatchScalarBitwise)
{
    // Axis lengths that do not divide the SIMD width (13 core clocks,
    // 7 memory clocks, 5 CU counts) force the vectorized stage-3 loop
    // through its scalar epilogue; kernels with atomics and a serial
    // fraction exercise every branch of the batched kernel.
    const gpu::AnalyticModel model;
    std::vector<double> cores, mems;
    for (int i = 0; i < 13; ++i)
        cores.push_back(307.0 + 53.0 * i);
    for (int i = 0; i < 7; ++i)
        mems.push_back(211.0 + 171.0 * i);
    const gpu::ConfigGrid grid =
        customGrid({1, 3, 7, 13, 44}, cores, mems);

    const gpu::KernelDesc stream = workloads::streaming(
        "diff/irregular/stream", {.wgs = 1024, .wi_per_wg = 256});
    const gpu::KernelDesc contended = workloads::reduction(
        "diff/irregular/reduce", {.wgs = 768, .wi_per_wg = 128}, 0.8);
    const gpu::KernelDesc compute = workloads::denseCompute(
        "diff/irregular/dense", {.wgs = 2048, .wi_per_wg = 64});

    ASSERT_GT(contended.atomic_ops, 0.0);
    ASSERT_GT(contended.serial_fraction, 0.0);
    expectBitwiseMatch(model, stream, grid);
    expectBitwiseMatch(model, contended, grid);
    expectBitwiseMatch(model, compute, grid);
}

TEST(GridDifferentialTest, NoisyRuntimesMatchNoisyScalarOnIrregularGrid)
{
    // The decorator's runtimes hot path must replay the exact
    // per-point lognormal factor on awkward grid shapes too.
    const gpu::AnalyticModel inner;
    const harness::NoisyModel noisy(inner, 0.07, 9);
    const gpu::ConfigGrid grid = customGrid(
        {1, 11, 44}, {333.0, 666.0, 999.0}, {200.0, 650.0, 1100.0,
        1400.0});
    const gpu::KernelDesc kernel = workloads::reduction(
        "diff/noisy/reduce", {.wgs = 256, .wi_per_wg = 256}, 0.5);

    expectBitwiseMatch(noisy, kernel, grid);
}

TEST(GridDifferentialTest, GridFlattenMatchesConfigSpace)
{
    const auto space = scaling::ConfigSpace::paperGrid();
    const gpu::ConfigGrid grid = space.grid();
    ASSERT_EQ(grid.size(), space.size());
    for (size_t cu = 0; cu < grid.numCu(); ++cu) {
        for (size_t core = 0; core < grid.numCoreClk(); ++core) {
            for (size_t mem = 0; mem < grid.numMemClk(); ++mem) {
                EXPECT_EQ(grid.flatten(cu, core, mem),
                          space.flatten(cu, core, mem));
                EXPECT_EQ(grid.at(cu, core, mem).id(),
                          space.at(cu, core, mem).id());
            }
        }
    }
}

} // namespace
} // namespace gpuscale
