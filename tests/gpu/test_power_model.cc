/**
 * @file
 * Unit tests for the power/energy model.
 */

#include "gpu/power_model.hh"

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "gpu/analytic_model.hh"
#include "gpu/gpu_config.hh"
#include "gpu/kernel_desc.hh"
#include "workloads/archetypes.hh"

namespace gpuscale {
namespace gpu {
namespace {

KernelPerf
perfFor(const KernelDesc &kernel, const GpuConfig &cfg)
{
    return AnalyticModel{}.estimate(kernel, cfg);
}

TEST(PowerModelTest, VoltageCurveEndpointsAndClamp)
{
    const PowerModel model;
    EXPECT_DOUBLE_EQ(model.voltage(200.0), 0.80);
    EXPECT_DOUBLE_EQ(model.voltage(1000.0), 1.20);
    EXPECT_DOUBLE_EQ(model.voltage(600.0), 1.00);
    // Clamped outside the DVFS range.
    EXPECT_DOUBLE_EQ(model.voltage(100.0), 0.80);
    EXPECT_DOUBLE_EQ(model.voltage(2000.0), 1.20);
}

TEST(PowerModelTest, ComponentsArePositiveAndSum)
{
    const PowerModel model;
    const auto kernel = workloads::denseCompute(
        "t/p/k", {.wgs = 4096, .wi_per_wg = 256});
    const auto cfg = makeMaxConfig();
    const PowerResult p = model.evaluate(cfg, perfFor(kernel, cfg));

    EXPECT_GT(p.core_dynamic_w, 0.0);
    EXPECT_GT(p.core_static_w, 0.0);
    EXPECT_GT(p.memory_w, 0.0);
    EXPECT_GT(p.base_w, 0.0);
    EXPECT_NEAR(p.total_w,
                p.core_dynamic_w + p.core_static_w + p.memory_w +
                    p.base_w,
                1e-9);
    EXPECT_GT(p.energy_j, 0.0);
    EXPECT_GT(p.perf_per_watt, 0.0);
}

TEST(PowerModelTest, PowerGrowsWithCoreClockSuperlinearly)
{
    // P_dyn ~ f V(f)^2: the 5x frequency range spans more than 5x
    // dynamic power.
    const PowerModel model;
    const auto kernel = workloads::denseCompute(
        "t/p/k", {.wgs = 4096, .wi_per_wg = 256});
    GpuConfig lo = makeMaxConfig();
    lo.core_clk_mhz = 200.0;
    const GpuConfig hi = makeMaxConfig();

    const double p_lo =
        model.evaluate(lo, perfFor(kernel, lo)).core_dynamic_w;
    const double p_hi =
        model.evaluate(hi, perfFor(kernel, hi)).core_dynamic_w;
    EXPECT_GT(p_hi / p_lo, 5.0);
    EXPECT_NEAR(p_hi / p_lo, 5.0 * (1.2 * 1.2) / (0.8 * 0.8), 1.5);
}

TEST(PowerModelTest, IdleArrayDrawsLessThanBusyArray)
{
    const PowerModel model;
    const auto cfg = makeMaxConfig();
    // Compute-bound: SIMDs busy; memory-bound: SIMDs mostly idle.
    const auto busy = workloads::denseCompute(
        "t/busy/k", {.wgs = 4096, .wi_per_wg = 256});
    const auto idle = workloads::streaming(
        "t/idle/k", {.wgs = 4096, .wi_per_wg = 256});
    const double w_busy =
        model.evaluate(cfg, perfFor(busy, cfg)).core_dynamic_w;
    const double w_idle =
        model.evaluate(cfg, perfFor(idle, cfg)).core_dynamic_w;
    EXPECT_GT(w_busy, 2.0 * w_idle);
}

TEST(PowerModelTest, StaticPowerScalesWithCus)
{
    const PowerModel model;
    const auto kernel = workloads::streaming(
        "t/p/k", {.wgs = 4096, .wi_per_wg = 256});
    GpuConfig small = makeMaxConfig();
    small.num_cus = 4;
    const GpuConfig big = makeMaxConfig();
    const double s_small =
        model.evaluate(small, perfFor(kernel, small)).core_static_w;
    const double s_big =
        model.evaluate(big, perfFor(kernel, big)).core_static_w;
    EXPECT_NEAR(s_big / s_small, 11.0, 1e-9);
}

TEST(PowerModelTest, MemoryPowerTracksClockAndUtilization)
{
    const PowerModel model;
    const auto kernel = workloads::streaming(
        "t/p/k", {.wgs = 16384, .wi_per_wg = 256});
    GpuConfig lo = makeMaxConfig();
    lo.mem_clk_mhz = 150.0;
    const GpuConfig hi = makeMaxConfig();
    const double m_lo =
        model.evaluate(lo, perfFor(kernel, lo)).memory_w;
    const double m_hi =
        model.evaluate(hi, perfFor(kernel, hi)).memory_w;
    EXPECT_GT(m_hi, m_lo);
}

TEST(PowerModelTest, EnergyEfficiencyFavorsRightSizing)
{
    // For a memory-bound kernel, a mid-size array at modest clocks
    // beats the flagship on perf/W.
    const PowerModel model;
    const AnalyticModel timing;
    const auto kernel = workloads::streaming(
        "t/eff/k", {.wgs = 16384, .wi_per_wg = 256});

    GpuConfig right_sized = makeMaxConfig();
    right_sized.num_cus = 16;
    right_sized.core_clk_mhz = 500.0;

    const auto perf_flag = timing.estimate(kernel, makeMaxConfig());
    const auto perf_right = timing.estimate(kernel, right_sized);
    const double eff_flag =
        model.evaluate(makeMaxConfig(), perf_flag).perf_per_watt;
    const double eff_right =
        model.evaluate(right_sized, perf_right).perf_per_watt;
    EXPECT_GT(eff_right, eff_flag);
}

TEST(PowerModelTest, EdpConsistency)
{
    const PowerModel model;
    const auto kernel = workloads::denseCompute(
        "t/p/k", {.wgs = 4096, .wi_per_wg = 256});
    const auto cfg = makeMaxConfig();
    const auto perf = perfFor(kernel, cfg);
    const PowerResult p = model.evaluate(cfg, perf);
    EXPECT_NEAR(p.edp, p.energy_j * perf.time_s, 1e-15);
}

class PowerModelErrorTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogThrowOnTerminate(true); }
    void TearDown() override { setLogThrowOnTerminate(false); }
};

TEST_F(PowerModelErrorTest, RejectsBadParams)
{
    PowerParams bad;
    bad.f_max_mhz = bad.f_min_mhz;
    EXPECT_THROW(PowerModel{bad}, std::runtime_error);

    PowerParams bad_v;
    bad_v.v_max = bad_v.v_min - 0.1;
    EXPECT_THROW(PowerModel{bad_v}, std::runtime_error);
}

} // namespace
} // namespace gpu
} // namespace gpuscale
