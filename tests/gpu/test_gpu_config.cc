/**
 * @file
 * Unit tests for GpuConfig.
 */

#include "gpu/gpu_config.hh"

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"

namespace gpuscale {
namespace gpu {
namespace {

TEST(GpuConfigTest, DerivedPeaksAtMaxConfig)
{
    const GpuConfig cfg = makeMaxConfig();
    // 44 CU x 4 SIMD x 16 lanes x 2 flops x 1 GHz = 5632 GFLOP/s.
    EXPECT_NEAR(cfg.peakGflops(), 5632.0, 1e-6);
    // 48 B x 4 transfers x 1.25 GHz = 240 GB/s pin rate.
    EXPECT_NEAR(cfg.peakDramBw(), 240e9, 1e-3);
    EXPECT_NEAR(cfg.effectiveDramBw(), 192e9, 1e-3);
    // 8 slices x 64 B x 1 GHz = 512 GB/s.
    EXPECT_NEAR(cfg.peakL2Bw(), 512e9, 1e-3);
    EXPECT_NEAR(cfg.l2CapacityBytes(), 1024.0 * 1024, 1e-9);
    EXPECT_EQ(cfg.maxWavesPerCu(), 40);
}

TEST(GpuConfigTest, PeaksScaleWithKnobs)
{
    GpuConfig a = makeMaxConfig();
    GpuConfig b = a;
    b.num_cus = a.num_cus / 2;
    EXPECT_NEAR(b.peakGflops(), a.peakGflops() / 2, 1e-9);
    // L2 and DRAM are independent of the CU count.
    EXPECT_DOUBLE_EQ(b.peakL2Bw(), a.peakL2Bw());
    EXPECT_DOUBLE_EQ(b.peakDramBw(), a.peakDramBw());

    GpuConfig c = a;
    c.core_clk_mhz = a.core_clk_mhz / 2;
    EXPECT_NEAR(c.peakGflops(), a.peakGflops() / 2, 1e-9);
    EXPECT_NEAR(c.peakL2Bw(), a.peakL2Bw() / 2, 1e-9);
    EXPECT_DOUBLE_EQ(c.peakDramBw(), a.peakDramBw());

    GpuConfig d = a;
    d.mem_clk_mhz = a.mem_clk_mhz / 2;
    EXPECT_NEAR(d.peakDramBw(), a.peakDramBw() / 2, 1e-9);
    EXPECT_DOUBLE_EQ(d.peakGflops(), a.peakGflops());
}

TEST(GpuConfigTest, StudyRangeRatios)
{
    const GpuConfig hi = makeMaxConfig();
    const GpuConfig lo = makeMinConfig();
    EXPECT_NEAR(static_cast<double>(hi.num_cus) / lo.num_cus, 11.0,
                1e-12);
    EXPECT_NEAR(hi.core_clk_mhz / lo.core_clk_mhz, 5.0, 1e-12);
    EXPECT_NEAR(hi.mem_clk_mhz / lo.mem_clk_mhz, 8.3333, 1e-3);
}

TEST(GpuConfigTest, IdAndDescribe)
{
    const GpuConfig cfg = makeMaxConfig();
    EXPECT_EQ(cfg.id(), "cu44_c1000_m1250");
    EXPECT_NE(cfg.describe().find("44 CUs"), std::string::npos);
}

TEST(GpuConfigTest, PresetsValidate)
{
    EXPECT_NO_THROW(makeMaxConfig().validate());
    EXPECT_NO_THROW(makeMinConfig().validate());
    EXPECT_NO_THROW(makeMidConfig().validate());
}

class GpuConfigValidationTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogThrowOnTerminate(true); }
    void TearDown() override { setLogThrowOnTerminate(false); }
};

TEST_F(GpuConfigValidationTest, RejectsBadKnobs)
{
    GpuConfig cfg;
    cfg.num_cus = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    cfg = GpuConfig{};
    cfg.core_clk_mhz = -1;
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    cfg = GpuConfig{};
    cfg.mem_clk_mhz = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST_F(GpuConfigValidationTest, RejectsBadMicroarchitecture)
{
    GpuConfig cfg;
    cfg.dram_efficiency = 1.5;
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    cfg = GpuConfig{};
    cfg.l2_slices = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    cfg = GpuConfig{};
    cfg.max_waves_per_simd = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

} // namespace
} // namespace gpu
} // namespace gpuscale
