/**
 * @file
 * Tests for performance-result types and additional analytic-model
 * mechanism cases (LDS-bound, L1-bound, barriers, coalescing).
 */

#include "gpu/perf_result.hh"

#include <gtest/gtest.h>

#include <set>

#include "gpu/analytic_model.hh"
#include "gpu/gpu_config.hh"
#include "gpu/kernel_desc.hh"

namespace gpuscale {
namespace gpu {
namespace {

TEST(PerfResultTest, BoundResourceNamesDistinct)
{
    std::set<std::string> names;
    for (const auto r :
         {BoundResource::Compute, BoundResource::Lds, BoundResource::L1,
          BoundResource::L2, BoundResource::Dram,
          BoundResource::Latency, BoundResource::Atomics,
          BoundResource::Launch}) {
        EXPECT_TRUE(names.insert(boundResourceName(r)).second);
    }
    EXPECT_EQ(names.size(), 8u);
}

TEST(PerfResultTest, ThroughputIsInverseTime)
{
    KernelPerf perf;
    perf.time_s = 0.25;
    EXPECT_DOUBLE_EQ(perf.throughput(), 4.0);
    perf.time_s = 0.0;
    EXPECT_DOUBLE_EQ(perf.throughput(), 0.0);
}

KernelDesc
base()
{
    KernelDesc k;
    k.name = "t/pr/k";
    k.num_workgroups = 8192;
    k.work_items_per_wg = 256;
    k.valu_ops = 10;
    k.mem_loads = 1;
    k.mem_stores = 0;
    k.l1_reuse = 0;
    k.l2_reuse = 0;
    return k;
}

TEST(AnalyticMechanismTest, LdsBoundKernel)
{
    KernelDesc k = base();
    k.lds_ops = 400; // 32 lanes/cycle per CU: dominates everything
    k.lds_bytes_per_wg = 1024;
    const AnalyticModel model;
    const KernelPerf perf = model.estimate(k, makeMaxConfig());
    EXPECT_EQ(perf.bound, BoundResource::Lds);
    // LDS runs in the core-clock domain.
    GpuConfig slow = makeMaxConfig();
    slow.core_clk_mhz = 500.0;
    EXPECT_NEAR(model.estimate(k, slow).time_s / perf.time_s, 2.0,
                0.1);
}

TEST(AnalyticMechanismTest, L1BoundKernel)
{
    KernelDesc k = base();
    // All hits in the L1 (footprint far below capacity so the
    // capacity factor saturates at 1), but a torrent of them.
    k.mem_loads = 60;
    k.l1_reuse = 1.0;
    k.footprint_bytes_per_wg = 64;
    const AnalyticModel model;
    const KernelPerf perf = model.estimate(k, makeMaxConfig());
    EXPECT_EQ(perf.bound, BoundResource::L1);
}

TEST(AnalyticMechanismTest, BarriersSlowLatencyBoundKernels)
{
    KernelDesc k = base();
    k.num_workgroups = 64; // low concurrency: latency regime
    k.mem_loads = 12;
    k.mlp = 1.0;
    const AnalyticModel model;
    const double without = model.estimate(k, makeMaxConfig()).time_s;
    k.barriers = 40;
    const double with_barriers =
        model.estimate(k, makeMaxConfig()).time_s;
    EXPECT_GT(with_barriers, without);
}

TEST(AnalyticMechanismTest, CoalescingScalesDramTraffic)
{
    KernelDesc k = base();
    k.mem_loads = 8;
    const AnalyticModel model;
    const KernelPerf coalesced = model.estimate(k, makeMaxConfig());
    k.coalescing = 0.25;
    const KernelPerf scattered = model.estimate(k, makeMaxConfig());
    // 4x the lines moved -> ~4x the DRAM-bound runtime.
    EXPECT_NEAR(scattered.t_dram / coalesced.t_dram, 4.0, 0.01);
}

TEST(AnalyticMechanismTest, CacheHitsReduceDramTime)
{
    KernelDesc k = base();
    k.mem_loads = 8;
    k.footprint_bytes_per_wg = 512; // tiny: fits everywhere
    const AnalyticModel model;
    const KernelPerf cold = model.estimate(k, makeMaxConfig());
    k.l1_reuse = 0.9;
    const KernelPerf warm = model.estimate(k, makeMaxConfig());
    EXPECT_LT(warm.t_dram, 0.2 * cold.t_dram);
    EXPECT_GT(warm.cache.l1_hit_rate, 0.85);
}

TEST(AnalyticMechanismTest, SfuOpsRunAtQuarterRate)
{
    KernelDesc compute = base();
    compute.valu_ops = 400;
    KernelDesc sfu = base();
    sfu.valu_ops = 0;
    sfu.sfu_ops = 100; // 100 x 4 = 400 issue-cycle equivalents
    const AnalyticModel model;
    EXPECT_NEAR(model.estimate(sfu, makeMaxConfig()).t_compute /
                    model.estimate(compute, makeMaxConfig()).t_compute,
                1.0, 1e-9);
}

} // namespace
} // namespace gpu
} // namespace gpuscale
