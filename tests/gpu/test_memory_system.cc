/**
 * @file
 * Unit tests for the DRAM model.
 */

#include "gpu/memory_system.hh"

#include <gtest/gtest.h>

#include "gpu/gpu_config.hh"

namespace gpuscale {
namespace gpu {
namespace {

TEST(MemorySystemTest, BandwidthScalesWithMemoryClock)
{
    GpuConfig lo = makeMaxConfig();
    lo.mem_clk_mhz = 150.0;
    GpuConfig hi = makeMaxConfig();
    hi.mem_clk_mhz = 1250.0;

    const MemorySystem mlo(lo), mhi(hi);
    EXPECT_NEAR(mhi.peakBandwidth() / mlo.peakBandwidth(), 8.3333,
                1e-3);
}

TEST(MemorySystemTest, LatencyIsClockInvariant)
{
    GpuConfig lo = makeMaxConfig();
    lo.mem_clk_mhz = 150.0;
    const MemorySystem mlo(lo);
    const MemorySystem mhi(makeMaxConfig());
    EXPECT_DOUBLE_EQ(mlo.unloadedLatency(), mhi.unloadedLatency());
}

TEST(MemorySystemTest, AchievedBandwidthIsCapped)
{
    const MemorySystem mem(makeMaxConfig());
    const DramState over = mem.evaluate(10.0 * mem.peakBandwidth());
    EXPECT_DOUBLE_EQ(over.achieved_bw, mem.peakBandwidth());
    EXPECT_LE(over.utilization, 0.951);

    const DramState under = mem.evaluate(0.5 * mem.peakBandwidth());
    EXPECT_DOUBLE_EQ(under.achieved_bw, 0.5 * mem.peakBandwidth());
    EXPECT_NEAR(under.utilization, 0.5, 1e-12);
}

TEST(MemorySystemTest, LoadedLatencyGrowsWithUtilization)
{
    const MemorySystem mem(makeMaxConfig());
    double prev = 0;
    for (double frac : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0, 2.0}) {
        const DramState st = mem.evaluate(frac * mem.peakBandwidth());
        EXPECT_GE(st.loaded_latency_s, prev);
        prev = st.loaded_latency_s;
    }
    // Unloaded latency is the floor.
    EXPECT_DOUBLE_EQ(mem.evaluate(0.0).loaded_latency_s,
                     mem.unloadedLatency());
}

TEST(MemorySystemTest, QueueInflationIsBounded)
{
    // At the utilization clamp, M/D/1 gives 1 + 0.95/(2*0.05) = 10.5x.
    const MemorySystem mem(makeMaxConfig());
    const DramState sat = mem.evaluate(100.0 * mem.peakBandwidth());
    EXPECT_LT(sat.loaded_latency_s, 11.0 * mem.unloadedLatency());
    EXPECT_GT(sat.loaded_latency_s, mem.unloadedLatency());
}

TEST(MemorySystemTest, ZeroDemandIsValid)
{
    const MemorySystem mem(makeMaxConfig());
    const DramState idle = mem.evaluate(0.0);
    EXPECT_DOUBLE_EQ(idle.achieved_bw, 0.0);
    EXPECT_DOUBLE_EQ(idle.utilization, 0.0);
}

} // namespace
} // namespace gpu
} // namespace gpuscale
