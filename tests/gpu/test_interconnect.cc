/**
 * @file
 * Unit tests for the CU<->L2 crossbar model.
 */

#include "gpu/interconnect.hh"

#include <gtest/gtest.h>

#include "gpu/gpu_config.hh"

namespace gpuscale {
namespace gpu {
namespace {

TEST(InterconnectTest, CoreClockDomain)
{
    GpuConfig hi = makeMaxConfig();
    GpuConfig lo = makeMaxConfig();
    lo.core_clk_mhz = 200.0;

    const XbarState xhi = computeXbar(hi);
    const XbarState xlo = computeXbar(lo);
    EXPECT_NEAR(xhi.l2_bw / xlo.l2_bw, 5.0, 1e-9);
    // Memory clock is irrelevant to the crossbar.
    GpuConfig mem_low = makeMaxConfig();
    mem_low.mem_clk_mhz = 150.0;
    EXPECT_DOUBLE_EQ(computeXbar(mem_low).l2_bw, xhi.l2_bw);
}

TEST(InterconnectTest, PortLimitBindsAtFewCus)
{
    GpuConfig few = makeMaxConfig();
    few.num_cus = 4;
    const XbarState x = computeXbar(few);
    // 4 CUs x 64 B x 1 GHz = 256 GB/s < 512 GB/s of L2.
    EXPECT_DOUBLE_EQ(x.cu_port_bw, 256e9);
    EXPECT_DOUBLE_EQ(x.effective_bw, x.cu_port_bw);
}

TEST(InterconnectTest, L2LimitBindsAtManyCus)
{
    const XbarState x = computeXbar(makeMaxConfig());
    // 44 CUs of ports exceed the 8 L2 slices.
    EXPECT_GT(x.cu_port_bw, x.l2_bw);
    EXPECT_DOUBLE_EQ(x.effective_bw, x.l2_bw);
}

TEST(InterconnectTest, LatencyScalesInverselyWithClock)
{
    GpuConfig lo = makeMaxConfig();
    lo.core_clk_mhz = 500.0;
    EXPECT_NEAR(computeXbar(lo).latency_s,
                2.0 * computeXbar(makeMaxConfig()).latency_s, 1e-15);
}

} // namespace
} // namespace gpu
} // namespace gpuscale
