/**
 * @file
 * Unit tests for the occupancy model.
 */

#include "gpu/occupancy.hh"

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "gpu/gpu_config.hh"
#include "gpu/kernel_desc.hh"

namespace gpuscale {
namespace gpu {
namespace {

KernelDesc
baseKernel()
{
    KernelDesc k;
    k.name = "t/p/k";
    k.num_workgroups = 10000;
    k.work_items_per_wg = 256; // 4 waves
    k.vgprs = 16;              // not limiting
    k.lds_bytes_per_wg = 0;
    return k;
}

TEST(OccupancyTest, WaveSlotLimit)
{
    // 4 waves per wg, 40 wave slots -> 10 wgs, but only 16 hw slots;
    // wave slots bind first: min(10, 16) = 10.
    const Occupancy occ =
        computeOccupancy(baseKernel(), makeMaxConfig());
    EXPECT_EQ(occ.wgs_per_cu, 10);
    EXPECT_EQ(occ.waves_per_cu, 40);
    EXPECT_EQ(occ.limiter, OccupancyLimiter::WavefrontSlots);
    EXPECT_DOUBLE_EQ(occ.waveSlotFraction(makeMaxConfig()), 1.0);
}

TEST(OccupancyTest, WorkgroupSlotLimit)
{
    KernelDesc k = baseKernel();
    k.work_items_per_wg = 64; // 1 wave per wg -> 40 by waves, 16 slots
    const Occupancy occ = computeOccupancy(k, makeMaxConfig());
    EXPECT_EQ(occ.wgs_per_cu, 16);
    EXPECT_EQ(occ.limiter, OccupancyLimiter::WorkgroupSlots);
}

TEST(OccupancyTest, RegisterLimit)
{
    KernelDesc k = baseKernel();
    k.vgprs = 128; // 2 waves per SIMD -> 8 waves/CU -> 2 wgs
    const Occupancy occ = computeOccupancy(k, makeMaxConfig());
    EXPECT_EQ(occ.wgs_per_cu, 2);
    EXPECT_EQ(occ.waves_per_cu, 8);
    EXPECT_EQ(occ.limiter, OccupancyLimiter::Registers);
}

TEST(OccupancyTest, LdsLimit)
{
    KernelDesc k = baseKernel();
    k.lds_bytes_per_wg = 20.0 * 1024; // 64KB / 20KB -> 3 wgs
    const Occupancy occ = computeOccupancy(k, makeMaxConfig());
    EXPECT_EQ(occ.wgs_per_cu, 3);
    EXPECT_EQ(occ.limiter, OccupancyLimiter::Lds);
}

TEST(OccupancyTest, LaunchSizeLimit)
{
    KernelDesc k = baseKernel();
    k.num_workgroups = 8; // far below 10 * 44 machine capacity
    const Occupancy occ = computeOccupancy(k, makeMaxConfig());
    EXPECT_EQ(occ.active_wgs, 8);
    EXPECT_EQ(occ.used_cus, 8);
    EXPECT_EQ(occ.limiter, OccupancyLimiter::LaunchSize);
}

TEST(OccupancyTest, MachineWideCountsScaleWithCus)
{
    const KernelDesc k = baseKernel();
    GpuConfig small = makeMaxConfig();
    small.num_cus = 4;
    const Occupancy lo = computeOccupancy(k, small);
    const Occupancy hi = computeOccupancy(k, makeMaxConfig());
    EXPECT_EQ(lo.wgs_per_cu, hi.wgs_per_cu);
    EXPECT_EQ(hi.active_wgs, lo.active_wgs * 11);
}

TEST(OccupancyTest, LimiterNamesAreDistinct)
{
    EXPECT_EQ(limiterName(OccupancyLimiter::Registers), "registers");
    EXPECT_EQ(limiterName(OccupancyLimiter::Lds), "lds");
    EXPECT_EQ(limiterName(OccupancyLimiter::LaunchSize), "launch-size");
}

class OccupancyErrorTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogThrowOnTerminate(true); }
    void TearDown() override { setLogThrowOnTerminate(false); }
};

TEST_F(OccupancyErrorTest, OversizedLdsIsFatal)
{
    KernelDesc k = baseKernel();
    k.lds_bytes_per_wg = 128.0 * 1024; // exceeds the CU's 64 KiB
    EXPECT_THROW(computeOccupancy(k, makeMaxConfig()),
                 std::runtime_error);
}

TEST_F(OccupancyErrorTest, WorkgroupBiggerThanCuIsFatal)
{
    KernelDesc k = baseKernel();
    k.work_items_per_wg = 1024; // 16 waves
    k.vgprs = 256;              // 1 wave per SIMD -> 4 waves per CU
    EXPECT_THROW(computeOccupancy(k, makeMaxConfig()),
                 std::runtime_error);
}

} // namespace
} // namespace gpu
} // namespace gpuscale
