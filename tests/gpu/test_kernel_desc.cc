/**
 * @file
 * Unit tests for KernelDesc, including a parameterized validation
 * sweep over malformed fields.
 */

#include "gpu/kernel_desc.hh"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>

#include "base/logging.hh"
#include "gpu/gpu_config.hh"

namespace gpuscale {
namespace gpu {
namespace {

KernelDesc
goodKernel()
{
    KernelDesc k;
    k.name = "test/prog/kernel";
    k.num_workgroups = 128;
    k.work_items_per_wg = 256;
    return k;
}

TEST(KernelDescTest, DerivedQuantities)
{
    KernelDesc k = goodKernel();
    const GpuConfig cfg = makeMaxConfig();
    EXPECT_EQ(k.wavesPerWg(cfg), 4); // 256 / 64
    EXPECT_EQ(k.totalWaves(cfg), 512);
    EXPECT_EQ(k.totalWorkItems(), 128 * 256);

    k.mem_loads = 10;
    k.mem_stores = 2;
    k.bytes_per_access = 4;
    EXPECT_DOUBLE_EQ(k.totalMemInsts(), 128.0 * 256 * 12);
    EXPECT_DOUBLE_EQ(k.totalBytesRequested(), 128.0 * 256 * 12 * 4);
}

TEST(KernelDescTest, PartialWavefrontRoundsUp)
{
    KernelDesc k = goodKernel();
    k.work_items_per_wg = 65;
    EXPECT_EQ(k.wavesPerWg(makeMaxConfig()), 2);
    k.work_items_per_wg = 1;
    EXPECT_EQ(k.wavesPerWg(makeMaxConfig()), 1);
}

TEST(KernelDescTest, ArithmeticIntensity)
{
    KernelDesc k = goodKernel();
    k.valu_ops = 100;
    k.sfu_ops = 0;
    k.mem_loads = 5;
    k.mem_stores = 0;
    k.bytes_per_access = 4;
    k.coalescing = 1.0;
    EXPECT_NEAR(arithmeticIntensity(k), 100.0 / 20.0, 1e-12);
    // Poor coalescing moves more bytes, lowering the intensity.
    k.coalescing = 0.5;
    EXPECT_NEAR(arithmeticIntensity(k), 100.0 / 40.0, 1e-12);
}

TEST(KernelDescTest, DescribeMentionsNameAndGeometry)
{
    const KernelDesc k = goodKernel();
    const std::string text = k.describe();
    EXPECT_NE(text.find("test/prog/kernel"), std::string::npos);
    EXPECT_NE(text.find("128 wg"), std::string::npos);
}

/** Parameterized validation: each mutation must be rejected. */
struct BadFieldCase {
    const char *label;
    std::function<void(KernelDesc &)> mutate;
};

class KernelValidationTest
    : public ::testing::TestWithParam<BadFieldCase>
{
  protected:
    void SetUp() override { setLogThrowOnTerminate(true); }
    void TearDown() override { setLogThrowOnTerminate(false); }
};

TEST_P(KernelValidationTest, RejectsBadField)
{
    KernelDesc k = goodKernel();
    GetParam().mutate(k);
    EXPECT_THROW(k.validate(), std::runtime_error)
        << "field: " << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    BadFields, KernelValidationTest,
    ::testing::Values(
        BadFieldCase{"empty_name",
                     [](KernelDesc &k) { k.name.clear(); }},
        BadFieldCase{"zero_wgs",
                     [](KernelDesc &k) { k.num_workgroups = 0; }},
        BadFieldCase{"wi_too_large",
                     [](KernelDesc &k) { k.work_items_per_wg = 2048; }},
        BadFieldCase{"zero_launches",
                     [](KernelDesc &k) { k.launches = 0; }},
        BadFieldCase{"negative_valu",
                     [](KernelDesc &k) { k.valu_ops = -1; }},
        BadFieldCase{"negative_loads",
                     [](KernelDesc &k) { k.mem_loads = -0.1; }},
        BadFieldCase{"bytes_zero",
                     [](KernelDesc &k) { k.bytes_per_access = 0; }},
        BadFieldCase{"bytes_too_big",
                     [](KernelDesc &k) { k.bytes_per_access = 128; }},
        BadFieldCase{"coalescing_zero",
                     [](KernelDesc &k) { k.coalescing = 0; }},
        BadFieldCase{"coalescing_above_one",
                     [](KernelDesc &k) { k.coalescing = 1.5; }},
        BadFieldCase{"vgprs_zero", [](KernelDesc &k) { k.vgprs = 0; }},
        BadFieldCase{"vgprs_too_many",
                     [](KernelDesc &k) { k.vgprs = 512; }},
        BadFieldCase{"divergence_one",
                     [](KernelDesc &k) { k.branch_divergence = 1.0; }},
        BadFieldCase{"reuse_above_one",
                     [](KernelDesc &k) { k.l1_reuse = 1.2; }},
        BadFieldCase{"mlp_below_one",
                     [](KernelDesc &k) { k.mlp = 0.5; }},
        BadFieldCase{"serial_above_one",
                     [](KernelDesc &k) { k.serial_fraction = 1.5; }},
        BadFieldCase{"negative_atomics",
                     [](KernelDesc &k) { k.atomic_ops = -1; }},
        BadFieldCase{"contention_above_one",
                     [](KernelDesc &k) { k.atomic_contention = 2; }},
        BadFieldCase{"negative_overhead",
                     [](KernelDesc &k) { k.host_overhead_us = -1; }}),
    [](const ::testing::TestParamInfo<BadFieldCase> &info) {
        return info.param.label;
    });

TEST(KernelDescTest, GoodKernelValidates)
{
    EXPECT_NO_THROW(goodKernel().validate());
}

} // namespace
} // namespace gpu
} // namespace gpuscale
