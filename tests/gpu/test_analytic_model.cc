/**
 * @file
 * Behavioural and property tests for the analytic timing model.
 *
 * The behavioural tests pin down the scaling mechanisms the taxonomy
 * depends on; the property tests sweep randomly generated kernels and
 * assert model invariants that must hold for *any* input.
 */

#include "gpu/analytic_model.hh"

#include <gtest/gtest.h>

#include <cmath>

#include "gpu/gpu_config.hh"
#include "gpu/kernel_desc.hh"
#include "workloads/archetypes.hh"
#include "workloads/generator.hh"

namespace gpuscale {
namespace gpu {
namespace {

using workloads::ArchetypeParams;

GpuConfig
config(int cus, double core, double mem)
{
    GpuConfig cfg;
    cfg.num_cus = cus;
    cfg.core_clk_mhz = core;
    cfg.mem_clk_mhz = mem;
    return cfg;
}

TEST(AnalyticModelTest, ComputeKernelScalesWithCoreClock)
{
    const AnalyticModel model;
    const KernelDesc k = workloads::denseCompute(
        "t/c/k", {.wgs = 8192, .wi_per_wg = 256});
    const KernelPerf lo = model.estimate(k, config(44, 200, 1250));
    const KernelPerf hi = model.estimate(k, config(44, 1000, 1250));
    EXPECT_NEAR(lo.time_s / hi.time_s, 5.0, 0.15);
    EXPECT_EQ(hi.bound, BoundResource::Compute);
}

TEST(AnalyticModelTest, ComputeKernelIgnoresMemoryClock)
{
    const AnalyticModel model;
    const KernelDesc k = workloads::denseCompute(
        "t/c/k", {.wgs = 8192, .wi_per_wg = 256});
    const KernelPerf lo = model.estimate(k, config(44, 1000, 150));
    const KernelPerf hi = model.estimate(k, config(44, 1000, 1250));
    EXPECT_NEAR(lo.time_s / hi.time_s, 1.0, 0.10);
}

TEST(AnalyticModelTest, ComputeKernelScalesWithCus)
{
    const AnalyticModel model;
    const KernelDesc k = workloads::denseCompute(
        "t/c/k", {.wgs = 44 * 240, .wi_per_wg = 256});
    const KernelPerf lo = model.estimate(k, config(4, 1000, 1250));
    const KernelPerf hi = model.estimate(k, config(44, 1000, 1250));
    EXPECT_NEAR(lo.time_s / hi.time_s, 11.0, 0.8);
}

TEST(AnalyticModelTest, StreamingKernelScalesWithMemoryClock)
{
    const AnalyticModel model;
    const KernelDesc k = workloads::streaming(
        "t/s/k", {.wgs = 16384, .wi_per_wg = 256});
    const KernelPerf lo = model.estimate(k, config(44, 1000, 150));
    const KernelPerf hi = model.estimate(k, config(44, 1000, 1250));
    EXPECT_NEAR(lo.time_s / hi.time_s, 8.33, 0.8);
    EXPECT_EQ(hi.bound, BoundResource::Dram);
}

TEST(AnalyticModelTest, StreamingKernelPlateausWithCus)
{
    const AnalyticModel model;
    const KernelDesc k = workloads::streaming(
        "t/s/k", {.wgs = 16384, .wi_per_wg = 256});
    const KernelPerf mid = model.estimate(k, config(24, 1000, 1250));
    const KernelPerf hi = model.estimate(k, config(44, 1000, 1250));
    // Bandwidth-bound: nearly flat past the point of saturation.
    EXPECT_NEAR(mid.time_s / hi.time_s, 1.0, 0.10);
}

TEST(AnalyticModelTest, L2BoundKernelTracksCoreClockNotMemory)
{
    // High L2 reuse, modest compute: bound by the core-clocked L2.
    KernelDesc k = workloads::streaming("t/l2/k",
                                        {.wgs = 8192,
                                         .wi_per_wg = 256,
                                         .launches = 1,
                                         .intensity = 0.2});
    k.l2_reuse = 0.95;
    k.footprint_bytes_per_wg = 64.0; // tiny: always L2 resident
    k.mem_loads = 16.0;

    const AnalyticModel model;
    const KernelPerf base = model.estimate(k, config(44, 500, 700));
    const KernelPerf fast_mem = model.estimate(k, config(44, 500, 1250));
    const KernelPerf fast_core =
        model.estimate(k, config(44, 1000, 700));
    // Memory clock does nearly nothing; core clock nearly halves time.
    EXPECT_NEAR(base.time_s / fast_mem.time_s, 1.0, 0.15);
    EXPECT_GT(base.time_s / fast_core.time_s, 1.6);
}

TEST(AnalyticModelTest, SmallLaunchPlateausAtItsWorkgroupCount)
{
    const AnalyticModel model;
    const KernelDesc k = workloads::smallGridCompute(
        "t/sg/k", {.wgs = 8, .wi_per_wg = 256});
    const KernelPerf at8 = model.estimate(k, config(8, 1000, 1250));
    const KernelPerf at44 = model.estimate(k, config(44, 1000, 1250));
    EXPECT_NEAR(at8.time_s / at44.time_s, 1.0, 0.05);
    // But it still gains from 4 -> 8 CUs.
    const KernelPerf at4 = model.estimate(k, config(4, 1000, 1250));
    EXPECT_GT(at4.time_s / at8.time_s, 1.7);
}

TEST(AnalyticModelTest, LaunchOverheadDominatesTinyKernels)
{
    const AnalyticModel model;
    KernelDesc k = workloads::tinyIterative(
        "t/tiny/k", {.wgs = 2, .wi_per_wg = 64, .launches = 1000,
                     .intensity = 0.05});
    const KernelPerf perf = model.estimate(k, makeMaxConfig());
    EXPECT_EQ(perf.bound, BoundResource::Launch);
    // Total time is at least launches x overhead.
    EXPECT_GE(perf.time_s, 1000 * k.host_overhead_us * 1e-6);
}

TEST(AnalyticModelTest, CacheThrashLosesPerformanceWithCus)
{
    const AnalyticModel model;
    const KernelDesc k = workloads::cacheThrash(
        "t/thrash/k", {.wgs = 4096, .wi_per_wg = 256}, 18.0);
    const KernelPerf few = model.estimate(k, config(8, 1000, 1250));
    const KernelPerf many = model.estimate(k, config(44, 1000, 1250));
    EXPECT_GT(many.time_s, few.time_s * 1.1);
}

TEST(AnalyticModelTest, ContendedAtomicsLoseWithCus)
{
    const AnalyticModel model;
    const KernelDesc k = workloads::reduction(
        "t/red/k", {.wgs = 4096, .wi_per_wg = 256}, 0.9);
    const KernelPerf few = model.estimate(k, config(4, 1000, 1250));
    const KernelPerf many = model.estimate(k, config(44, 1000, 1250));
    EXPECT_GT(many.time_s, few.time_s);
    EXPECT_EQ(many.bound, BoundResource::Atomics);
}

TEST(AnalyticModelTest, SerialFractionCapsSpeedup)
{
    const AnalyticModel model;
    KernelDesc k = workloads::denseCompute(
        "t/ser/k", {.wgs = 44 * 240, .wi_per_wg = 256});
    k.serial_fraction = 0.2;
    const KernelPerf lo = model.estimate(k, config(4, 1000, 1250));
    const KernelPerf hi = model.estimate(k, config(44, 1000, 1250));
    // Amdahl: with s = 0.2 relative to the 1-CU run, speedup from
    // 4 -> 44 CUs is well below the 11x machine ratio.
    EXPECT_LT(lo.time_s / hi.time_s, 4.5);
}

TEST(AnalyticModelTest, FingerprintIsSensitiveToEveryParam)
{
    // The sweep cache keys on fingerprint(): a parameter it misses
    // would serve one model's cached runtimes to a differently-tuned
    // model — silent corruption.  Perturb each AnalyticParams field
    // in turn and require a distinct fingerprint.  The companion
    // sizeof static_assert in analytic_model.cc forces new fields
    // through here.
    const std::string base = AnalyticModel{}.fingerprint();
    ASSERT_FALSE(base.empty());
    EXPECT_EQ(base, AnalyticModel{}.fingerprint());

    const auto perturbed = [&](auto mutate) {
        AnalyticParams p;
        mutate(p);
        return AnalyticModel(p).fingerprint();
    };
    EXPECT_NE(base, perturbed([](AnalyticParams &p) {
        p.barrier_cycles_per_wave += 1.0;
    }));
    EXPECT_NE(base, perturbed([](AnalyticParams &p) {
        p.barrier_base_cycles += 1.0;
    }));
    EXPECT_NE(base, perturbed([](AnalyticParams &p) {
        p.atomic_retry_scale += 1.0;
    }));
    EXPECT_NE(base, perturbed([](AnalyticParams &p) {
        p.atomic_reference_waves += 1.0;
    }));
}

TEST(AnalyticModelTest, BreakdownIsConsistentWithTotal)
{
    const AnalyticModel model;
    const KernelDesc k = workloads::stencil(
        "t/st/k", {.wgs = 2048, .wi_per_wg = 256}, 20.0);
    const KernelPerf perf = model.estimate(k, makeMaxConfig());
    const double max_term =
        std::max({perf.t_compute, perf.t_lds, perf.t_l1, perf.t_l2,
                  perf.t_dram, perf.t_latency, perf.t_atomic});
    EXPECT_NEAR(perf.kernel_time_s, max_term, 1e-12);
    EXPECT_NEAR(perf.time_s,
                static_cast<double>(k.launches) *
                    (perf.kernel_time_s + perf.t_launch),
                1e-12);
}

TEST(AnalyticModelTest, AchievedRatesAreBounded)
{
    const AnalyticModel model;
    const KernelDesc k = workloads::streaming(
        "t/s/k", {.wgs = 16384, .wi_per_wg = 256});
    const GpuConfig cfg = makeMaxConfig();
    const KernelPerf perf = model.estimate(k, cfg);
    EXPECT_LE(perf.achieved_dram_bw, cfg.effectiveDramBw() * 1.001);
    EXPECT_LE(perf.achieved_gflops, cfg.peakGflops() * 1.001);
    EXPECT_GE(perf.dram_utilization, 0.0);
    EXPECT_LT(perf.dram_utilization, 1.0);
}

TEST(AnalyticModelTest, DivergenceSlowsComputeKernels)
{
    const AnalyticModel model;
    KernelDesc k = workloads::denseCompute(
        "t/div/k", {.wgs = 8192, .wi_per_wg = 256});
    const KernelPerf convergent = model.estimate(k, makeMaxConfig());
    k.branch_divergence = 0.5;
    const KernelPerf divergent = model.estimate(k, makeMaxConfig());
    EXPECT_NEAR(divergent.time_s / convergent.time_s, 2.0, 0.2);
}

//
// Property tests over randomly generated kernels.
//

class AnalyticPropertyTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(AnalyticPropertyTest, InvariantsHoldForRandomKernels)
{
    const AnalyticModel model;
    workloads::KernelGenerator gen(GetParam());
    const GpuConfig configs[] = {makeMinConfig(), makeMidConfig(),
                                 makeMaxConfig()};

    for (int i = 0; i < 40; ++i) {
        const KernelDesc k = gen.next();
        for (const auto &cfg : configs) {
            const KernelPerf perf = model.estimate(k, cfg);

            // Times are positive and finite.
            ASSERT_GT(perf.time_s, 0.0) << k.name;
            ASSERT_TRUE(std::isfinite(perf.time_s)) << k.name;
            ASSERT_GT(perf.kernel_time_s, 0.0) << k.name;

            // The roofline max is one of the component terms.
            const double max_term =
                std::max({perf.t_compute, perf.t_lds, perf.t_l1,
                          perf.t_l2, perf.t_dram, perf.t_latency,
                          perf.t_atomic});
            ASSERT_GE(perf.kernel_time_s, max_term * (1 - 1e-9))
                << k.name;

            // Determinism.
            const KernelPerf again = model.estimate(k, cfg);
            ASSERT_DOUBLE_EQ(perf.time_s, again.time_s) << k.name;

            // Physical caps.
            ASSERT_LE(perf.achieved_dram_bw,
                      cfg.effectiveDramBw() * 1.001)
                << k.name;
            ASSERT_LE(perf.achieved_gflops, cfg.peakGflops() * 1.001)
                << k.name;
        }
    }
}

TEST_P(AnalyticPropertyTest, FasterClocksNeverHurt)
{
    const AnalyticModel model;
    workloads::KernelGenerator gen(GetParam() ^ 0xabcdef);

    for (int i = 0; i < 25; ++i) {
        const KernelDesc k = gen.next();
        const KernelPerf slow =
            model.estimate(k, config(24, 400, 700));
        const KernelPerf fast_core =
            model.estimate(k, config(24, 800, 700));
        const KernelPerf fast_mem =
            model.estimate(k, config(24, 400, 1250));
        // Frequency knobs are contention-free in the model: raising
        // either can never increase runtime.
        ASSERT_LE(fast_core.time_s, slow.time_s * (1 + 1e-9)) << k.name;
        ASSERT_LE(fast_mem.time_s, slow.time_s * (1 + 1e-9)) << k.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyticPropertyTest,
                         ::testing::Range<uint64_t>(0, 8));

} // namespace
} // namespace gpu
} // namespace gpuscale
