/**
 * @file
 * Unit tests for the dispatch model.
 */

#include "gpu/dispatch.hh"

#include <gtest/gtest.h>

#include "gpu/gpu_config.hh"
#include "gpu/kernel_desc.hh"
#include "gpu/occupancy.hh"

namespace gpuscale {
namespace gpu {
namespace {

KernelDesc
kernelWithWgs(int64_t wgs)
{
    KernelDesc k;
    k.name = "t/p/k";
    k.num_workgroups = wgs;
    k.work_items_per_wg = 256; // 4 waves per workgroup
    k.vgprs = 16;              // registers never limit occupancy here
    k.host_overhead_us = 10.0;
    return k;
}

TEST(DispatchTest, ExactFillHasNoTail)
{
    const GpuConfig cfg = makeMaxConfig();
    // wgs_per_cu = 10 (wave slots); capacity = 440.
    const KernelDesc k = kernelWithWgs(440);
    const DispatchState d =
        computeDispatch(k, cfg, computeOccupancy(k, cfg));
    EXPECT_EQ(d.batches, 1);
    EXPECT_DOUBLE_EQ(d.tail_factor, 1.0);
    EXPECT_DOUBLE_EQ(d.machine_fill, 1.0);
}

TEST(DispatchTest, OneExtraWorkgroupDoublesBatches)
{
    const GpuConfig cfg = makeMaxConfig();
    const KernelDesc k = kernelWithWgs(441);
    const DispatchState d =
        computeDispatch(k, cfg, computeOccupancy(k, cfg));
    EXPECT_EQ(d.batches, 2);
    EXPECT_NEAR(d.tail_factor, 2.0 / (441.0 / 440.0), 1e-9);
    EXPECT_LT(d.machine_fill, 0.51);
}

TEST(DispatchTest, TinyLaunchUnderfillsMachine)
{
    const GpuConfig cfg = makeMaxConfig();
    const KernelDesc k = kernelWithWgs(44);
    const DispatchState d =
        computeDispatch(k, cfg, computeOccupancy(k, cfg));
    EXPECT_EQ(d.batches, 1);
    EXPECT_NEAR(d.machine_fill, 0.1, 1e-9);
}

TEST(DispatchTest, TailShrinksWithScale)
{
    const GpuConfig cfg = makeMaxConfig();
    // Large launches amortize the final partial batch.
    const KernelDesc big = kernelWithWgs(440 * 100 + 1);
    const DispatchState d =
        computeDispatch(big, cfg, computeOccupancy(big, cfg));
    EXPECT_EQ(d.batches, 101);
    EXPECT_LT(d.tail_factor, 1.01);
}

TEST(DispatchTest, LaunchOverheadFromDescriptor)
{
    const GpuConfig cfg = makeMaxConfig();
    const KernelDesc k = kernelWithWgs(440);
    const DispatchState d =
        computeDispatch(k, cfg, computeOccupancy(k, cfg));
    EXPECT_DOUBLE_EQ(d.launch_overhead_s, 10.0e-6);
}

} // namespace
} // namespace gpu
} // namespace gpuscale
