/**
 * @file
 * Tests for the discrete-event model: resource semantics, determinism,
 * and agreement with the analytic model on anchor kernels.
 */

#include "gpu/timing/event_sim.hh"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "gpu/analytic_model.hh"
#include "gpu/gpu_config.hh"
#include "gpu/kernel_desc.hh"
#include "gpu/timing/resource.hh"
#include "workloads/archetypes.hh"

namespace gpuscale {
namespace gpu {
namespace {

using timing::EventModel;
using timing::EventSimParams;
using timing::PipeResource;

TEST(PipeResourceTest, FifoServiceSemantics)
{
    PipeResource pipe("p", 100.0); // 100 units/s
    // First request: starts immediately, takes 0.5 s.
    EXPECT_DOUBLE_EQ(pipe.serve(0.0, 50.0), 0.5);
    // Second request arriving earlier still queues behind the first.
    EXPECT_DOUBLE_EQ(pipe.serve(0.1, 10.0), 0.6);
    // A request arriving after the pipe is free starts on arrival.
    EXPECT_DOUBLE_EQ(pipe.serve(2.0, 100.0), 3.0);
    EXPECT_DOUBLE_EQ(pipe.totalWork(), 160.0);
    EXPECT_DOUBLE_EQ(pipe.busyTime(), 1.6);
}

TEST(PipeResourceTest, UtilizationAndReset)
{
    PipeResource pipe("p", 10.0);
    pipe.serve(0.0, 10.0); // busy 1 s
    EXPECT_DOUBLE_EQ(pipe.utilization(2.0), 0.5);
    EXPECT_DOUBLE_EQ(pipe.utilization(0.5), 1.0); // clamped
    pipe.reset();
    EXPECT_DOUBLE_EQ(pipe.totalWork(), 0.0);
    EXPECT_DOUBLE_EQ(pipe.nextFree(), 0.0);
}

TEST(PipeResourceTest, ZeroWorkIsInstant)
{
    PipeResource pipe("p", 10.0);
    EXPECT_DOUBLE_EQ(pipe.serve(1.0, 0.0), 1.0);
}

TEST(EventModelTest, Deterministic)
{
    const EventModel model;
    const KernelDesc k = workloads::streaming(
        "t/s/k", {.wgs = 256, .wi_per_wg = 256});
    const KernelPerf a = model.estimate(k, makeMidConfig());
    const KernelPerf b = model.estimate(k, makeMidConfig());
    EXPECT_DOUBLE_EQ(a.time_s, b.time_s);
}

TEST(EventModelTest, SeedChangesRuntimeOnlySlightly)
{
    EventSimParams p1, p2;
    p2.seed = 999;
    const EventModel m1(p1), m2(p2);
    const KernelDesc k = workloads::streaming(
        "t/s/k", {.wgs = 512, .wi_per_wg = 256});
    const KernelPerf a = m1.estimate(k, makeMaxConfig());
    const KernelPerf b = m2.estimate(k, makeMaxConfig());
    // Stochastic cache-level selection differs, but steady-state
    // behaviour should not.
    EXPECT_NEAR(a.time_s / b.time_s, 1.0, 0.05);
}

TEST(EventModelTest, AgreesWithAnalyticOnStreaming)
{
    const EventModel event;
    const AnalyticModel analytic;
    const KernelDesc k = workloads::streaming(
        "t/s/k", {.wgs = 2048, .wi_per_wg = 256});
    const GpuConfig cfg = makeMaxConfig();
    const double te = event.estimate(k, cfg).time_s;
    const double ta = analytic.estimate(k, cfg).time_s;
    EXPECT_NEAR(te / ta, 1.0, 0.25);
}

TEST(EventModelTest, AgreesWithAnalyticOnCompute)
{
    const EventModel event;
    const AnalyticModel analytic;
    const KernelDesc k = workloads::denseCompute(
        "t/c/k", {.wgs = 1024, .wi_per_wg = 256});
    const GpuConfig cfg = makeMaxConfig();
    const double te = event.estimate(k, cfg).time_s;
    const double ta = analytic.estimate(k, cfg).time_s;
    EXPECT_NEAR(te / ta, 1.0, 0.25);
}

TEST(EventModelTest, ReproducesCoreClockScaling)
{
    const EventModel model;
    const KernelDesc k = workloads::denseCompute(
        "t/c/k", {.wgs = 1024, .wi_per_wg = 256});
    GpuConfig lo = makeMaxConfig();
    lo.core_clk_mhz = 200.0;
    const double slow = model.estimate(k, lo).time_s;
    const double fast = model.estimate(k, makeMaxConfig()).time_s;
    EXPECT_NEAR(slow / fast, 5.0, 0.5);
}

TEST(EventModelTest, ReproducesMemoryClockScaling)
{
    const EventModel model;
    const KernelDesc k = workloads::streaming(
        "t/s/k", {.wgs = 2048, .wi_per_wg = 256});
    GpuConfig lo = makeMaxConfig();
    lo.mem_clk_mhz = 150.0;
    const double slow = model.estimate(k, lo).time_s;
    const double fast = model.estimate(k, makeMaxConfig()).time_s;
    EXPECT_NEAR(slow / fast, 8.33, 1.2);
}

TEST(EventModelTest, LaunchCapExtrapolates)
{
    EventSimParams capped;
    capped.max_simulated_waves = 512;
    const EventModel small(capped);
    const EventModel full; // default cap far above this launch

    const KernelDesc k = workloads::streaming(
        "t/s/k", {.wgs = 2048, .wi_per_wg = 256}); // 8192 waves
    const GpuConfig cfg = makeMaxConfig();
    const double extrapolated = small.estimate(k, cfg).time_s;
    const double simulated = full.estimate(k, cfg).time_s;
    EXPECT_NEAR(extrapolated / simulated, 1.0, 0.30);
}

TEST(EventModelTest, ResourceBreakdownPopulated)
{
    const EventModel model;
    const KernelDesc k = workloads::streaming(
        "t/s/k", {.wgs = 512, .wi_per_wg = 256});
    const KernelPerf perf = model.estimate(k, makeMaxConfig());
    EXPECT_GT(perf.t_dram, 0.0);
    EXPECT_GT(perf.t_compute, 0.0);
    EXPECT_GT(perf.achieved_dram_bw, 0.0);
    EXPECT_EQ(perf.bound, BoundResource::Dram);
}


TEST(EventModelTest, InstrumentedRunRecordsStats)
{
    const EventModel model;
    const KernelDesc k = workloads::streaming(
        "t/s/k", {.wgs = 128, .wi_per_wg = 256});
    stats::StatGroup group("sim.gpu");
    const KernelPerf perf = model.estimate(k, makeMaxConfig(), group);

    // Instrumentation must not change the result.
    const KernelPerf plain = model.estimate(k, makeMaxConfig());
    EXPECT_DOUBLE_EQ(perf.time_s, plain.time_s);

    std::ostringstream os;
    group.printAll(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("sim.gpu.waves_simulated 512"),
              std::string::npos);
    EXPECT_NE(text.find("sim.gpu.workgroups_simulated 128"),
              std::string::npos);
    EXPECT_NE(text.find("sim.gpu.events"), std::string::npos);
    EXPECT_NE(text.find("sim.gpu.dram_bytes"), std::string::npos);
    EXPECT_NE(text.find("sim.gpu.dram_utilization"),
              std::string::npos);
}

TEST(EventModelTest, StatsBytesMatchTrafficModel)
{
    // The DRAM bytes the event simulator actually moves should agree
    // with the cache model's traffic accounting.
    const EventModel model;
    const KernelDesc k = workloads::streaming(
        "t/s/k", {.wgs = 256, .wi_per_wg = 256});
    const GpuConfig cfg = makeMaxConfig();
    stats::StatGroup group("sim");
    const KernelPerf perf = model.estimate(k, cfg, group);

    const double expected_dram =
        k.totalBytesRequested() * perf.cache.dram_traffic_per_byte;
    std::ostringstream os;
    group.printAll(os);
    // Extract the recorded value.
    const std::string text = os.str();
    const size_t pos = text.find("sim.dram_bytes ");
    ASSERT_NE(pos, std::string::npos);
    const double recorded =
        std::atof(text.c_str() + pos + strlen("sim.dram_bytes "));
    EXPECT_NEAR(recorded / expected_dram, 1.0, 0.10);
}

} // namespace
} // namespace gpu
} // namespace gpuscale
