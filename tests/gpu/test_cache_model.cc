/**
 * @file
 * Unit tests for the cache model.
 */

#include "gpu/cache_model.hh"

#include <gtest/gtest.h>

#include "gpu/gpu_config.hh"
#include "gpu/kernel_desc.hh"
#include "gpu/occupancy.hh"

namespace gpuscale {
namespace gpu {
namespace {

KernelDesc
baseKernel()
{
    KernelDesc k;
    k.name = "t/p/k";
    k.num_workgroups = 10000;
    k.work_items_per_wg = 256;
    k.l1_reuse = 0.6;
    k.l2_reuse = 0.8;
    k.footprint_bytes_per_wg = 8.0 * 1024;
    k.coalescing = 1.0;
    return k;
}

TEST(CapacityFactorTest, Limits)
{
    // Tiny footprint: everything fits.
    EXPECT_NEAR(capacityFactor(1e6, 1.0), 1.0, 1e-4);
    // Zero footprint is defined as a perfect fit.
    EXPECT_DOUBLE_EQ(capacityFactor(1e6, 0.0), 1.0);
    // Massive oversubscription approaches capacity/footprint.
    EXPECT_NEAR(capacityFactor(1e3, 1e6), 1e-3, 1e-4);
}

TEST(CapacityFactorTest, MonotoneInFootprint)
{
    // Start where the factor is measurably below 1 (tiny footprints
    // saturate to exactly 1.0 in double precision).
    double prev = 2.0;
    for (double fp = 2e5; fp <= 1e9; fp *= 2) {
        const double f = capacityFactor(1e6, fp);
        EXPECT_LT(f, prev);
        EXPECT_GT(f, 0.0);
        EXPECT_LE(f, 1.0);
        prev = f;
    }
}

TEST(CacheModelTest, HitRatesBoundedByReusePotential)
{
    const KernelDesc k = baseKernel();
    const GpuConfig cfg = makeMaxConfig();
    const Occupancy occ = computeOccupancy(k, cfg);
    const CacheBehavior cb = computeCacheBehavior(k, cfg, occ);
    EXPECT_GE(cb.l1_hit_rate, 0.0);
    EXPECT_LE(cb.l1_hit_rate, k.l1_reuse);
    EXPECT_GE(cb.l2_hit_rate, 0.0);
    EXPECT_LE(cb.l2_hit_rate, k.l2_reuse);
}

TEST(CacheModelTest, MoreCusDegradeSharedL2HitRate)
{
    KernelDesc k = baseKernel();
    // Footprint sized so a few CUs' workgroups fit and many don't.
    k.footprint_bytes_per_wg = 24.0 * 1024;

    GpuConfig small = makeMaxConfig();
    small.num_cus = 4;
    const GpuConfig big = makeMaxConfig();

    const CacheBehavior lo =
        computeCacheBehavior(k, small, computeOccupancy(k, small));
    const CacheBehavior hi =
        computeCacheBehavior(k, big, computeOccupancy(k, big));

    EXPECT_GT(lo.l2_hit_rate, hi.l2_hit_rate);
    EXPECT_LT(lo.dram_traffic_per_byte, hi.dram_traffic_per_byte);
    EXPECT_GT(hi.l2_footprint_bytes, lo.l2_footprint_bytes);
}

TEST(CacheModelTest, PoorCoalescingAmplifiesTraffic)
{
    KernelDesc k = baseKernel();
    const GpuConfig cfg = makeMaxConfig();
    const Occupancy occ = computeOccupancy(k, cfg);
    const CacheBehavior coalesced = computeCacheBehavior(k, cfg, occ);

    k.coalescing = 0.25;
    const CacheBehavior scattered = computeCacheBehavior(k, cfg, occ);
    EXPECT_NEAR(scattered.l2_traffic_per_byte,
                4.0 * coalesced.l2_traffic_per_byte, 1e-9);
}

TEST(CacheModelTest, TrafficConservation)
{
    // DRAM traffic never exceeds L2 traffic per byte.
    const KernelDesc k = baseKernel();
    const GpuConfig cfg = makeMaxConfig();
    const Occupancy occ = computeOccupancy(k, cfg);
    const CacheBehavior cb = computeCacheBehavior(k, cfg, occ);
    EXPECT_LE(cb.dram_traffic_per_byte, cb.l2_traffic_per_byte + 1e-12);
}

TEST(CacheModelTest, ZeroReuseStreamsEverything)
{
    KernelDesc k = baseKernel();
    k.l1_reuse = 0.0;
    k.l2_reuse = 0.0;
    const GpuConfig cfg = makeMaxConfig();
    const CacheBehavior cb =
        computeCacheBehavior(k, cfg, computeOccupancy(k, cfg));
    EXPECT_DOUBLE_EQ(cb.l1_hit_rate, 0.0);
    EXPECT_DOUBLE_EQ(cb.l2_hit_rate, 0.0);
    EXPECT_DOUBLE_EQ(cb.dram_traffic_per_byte, 1.0);
}

TEST(CacheModelTest, SharedFootprintCountsOnce)
{
    KernelDesc a = baseKernel();
    a.shared_footprint_bytes = 512.0 * 1024;
    KernelDesc b = baseKernel();

    const GpuConfig cfg = makeMaxConfig();
    const CacheBehavior with_shared =
        computeCacheBehavior(a, cfg, computeOccupancy(a, cfg));
    const CacheBehavior without =
        computeCacheBehavior(b, cfg, computeOccupancy(b, cfg));
    EXPECT_NEAR(with_shared.l2_footprint_bytes -
                    without.l2_footprint_bytes,
                512.0 * 1024, 1.0);
}

} // namespace
} // namespace gpu
} // namespace gpuscale
