/**
 * @file
 * ScopedTempDir: a hermetic per-test temp directory.
 *
 * ::testing::TempDir() is shared across test runs; a test that writes
 * fixed filenames under it can see a previous run's leftovers and has
 * to remember to clean them up.  ScopedTempDir creates a fresh
 * uniquely-named directory (honoring TMPDIR, falling back to the
 * system temp dir) and removes it on destruction, so disk-cache and
 * checkpoint tests never depend on prior state and never leak it.
 */

#ifndef GPUSCALE_TESTS_SUPPORT_TEMP_DIR_HH
#define GPUSCALE_TESTS_SUPPORT_TEMP_DIR_HH

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <system_error>

namespace gpuscale {
namespace test {

class ScopedTempDir
{
  public:
    explicit ScopedTempDir(const std::string &tag)
    {
        static std::atomic<unsigned> serial{0};
        const char *env = std::getenv("TMPDIR");
        const std::filesystem::path base =
            env && *env ? std::filesystem::path(env)
                        : std::filesystem::temp_directory_path();
        path_ = (base /
                 (tag + "." + std::to_string(::getpid()) + "." +
                  std::to_string(serial.fetch_add(1))))
                    .string();
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }

    ~ScopedTempDir()
    {
        // Best-effort: a failed cleanup only leaks a temp dir.
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
        if (ec)
            std::fprintf(stderr, "ScopedTempDir: leak %s: %s\n",
                         path_.c_str(), ec.message().c_str());
    }

    ScopedTempDir(const ScopedTempDir &) = delete;
    ScopedTempDir &operator=(const ScopedTempDir &) = delete;

    const std::string &path() const { return path_; }

    /** Path of a child entry inside the directory. */
    std::string
    sub(const std::string &name) const
    {
        return path_ + "/" + name;
    }

  private:
    std::string path_;
};

} // namespace test
} // namespace gpuscale

#endif // GPUSCALE_TESTS_SUPPORT_TEMP_DIR_HH
