/**
 * @file
 * Tests for the shared experiment drivers (on the fast test grid).
 */

#include "harness/experiment.hh"

#include <gtest/gtest.h>

#include "gpu/analytic_model.hh"
#include "workloads/registry.hh"

namespace gpuscale {
namespace harness {
namespace {

const CensusResult &
testCensus()
{
    static const CensusResult census = runCensus(
        gpu::AnalyticModel{}, scaling::ConfigSpace::testGrid());
    return census;
}

TEST(ExperimentTest, CensusCoversWholeZoo)
{
    const auto &census = testCensus();
    EXPECT_EQ(census.surfaces.size(), 267u);
    EXPECT_EQ(census.classifications.size(), 267u);
    EXPECT_EQ(census.space.size(), 27u);
}

TEST(ExperimentTest, SurfacesAndClassificationsAligned)
{
    const auto &census = testCensus();
    for (size_t i = 0; i < census.surfaces.size(); ++i) {
        EXPECT_EQ(census.surfaces[i].kernelName(),
                  census.classifications[i].kernel);
    }
}

TEST(ExperimentTest, FindHelpers)
{
    const auto &census = testCensus();
    const auto *c = findClassification(
        census, "rodinia/hotspot/calculate_temp");
    ASSERT_NE(c, nullptr);
    const auto *s =
        findSurface(census, "rodinia/hotspot/calculate_temp");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(findClassification(census, "nope"), nullptr);
    EXPECT_EQ(findSurface(census, "nope"), nullptr);
}

TEST(ExperimentTest, RepresentativesAreDistinctClasses)
{
    const auto &census = testCensus();
    const auto reps = representativesPerClass(census);
    EXPECT_GE(reps.size(), 3u);
    std::set<scaling::TaxonomyClass> seen;
    for (const auto *rep : reps) {
        EXPECT_TRUE(seen.insert(rep->cls).second);
        // The representative is the widest-range member of its class.
        for (const auto &c : census.classifications) {
            if (c.cls == rep->cls) {
                EXPECT_LE(c.perf_range, rep->perf_range + 1e-12);
            }
        }
    }
}

TEST(ExperimentTest, DefaultSpaceIsPaperGrid)
{
    // Run one kernel through the default-space census path by using
    // the full census (this is the expensive path, still < 1 s).
    const auto census = runCensus(gpu::AnalyticModel{});
    EXPECT_EQ(census.space.size(), 891u);
    EXPECT_EQ(census.classifications.size(), 267u);
}

} // namespace
} // namespace harness
} // namespace gpuscale
