/**
 * @file
 * Cancellation tests: token semantics, cooperative cancellation of
 * parallelFor (serial and pooled), and deadline-armed expiry.  The
 * gpuscaled drain and per-request deadlines both ride this token, so
 * a parallel region must stop promptly and surface CancelledError
 * through the first-error-wins machinery.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "harness/cancel.hh"
#include "harness/parallel.hh"

namespace gpuscale {
namespace {

using namespace std::chrono_literals;

TEST(CancelToken, FreshTokenIsNotExpired)
{
    harness::CancelToken token;
    EXPECT_FALSE(token.expired());
    EXPECT_FALSE(token.cancelledExplicitly());
}

TEST(CancelToken, CancelExpiresImmediately)
{
    harness::CancelToken token;
    token.cancel();
    EXPECT_TRUE(token.expired());
    EXPECT_TRUE(token.cancelledExplicitly());
}

TEST(CancelToken, DeadlineInFutureIsNotExpired)
{
    harness::CancelToken token;
    token.armDeadline(std::chrono::steady_clock::now() + 1h);
    EXPECT_FALSE(token.expired());
}

TEST(CancelToken, PastDeadlineExpiresWithoutExplicitCancel)
{
    harness::CancelToken token;
    token.armDeadline(std::chrono::steady_clock::now() - 1ms);
    EXPECT_TRUE(token.expired());
    EXPECT_FALSE(token.cancelledExplicitly());
}

TEST(CancelToken, BudgetArmsRelativeDeadline)
{
    harness::CancelToken token;
    token.armBudgetMs(1e9);
    EXPECT_FALSE(token.expired());

    harness::CancelToken spent;
    spent.armBudgetMs(0.0);
    std::this_thread::sleep_for(1ms);
    EXPECT_TRUE(spent.expired());
}

TEST(ParallelForCancel, NullTokenRunsEverything)
{
    std::atomic<size_t> ran{0};
    harness::parallelFor(1000, [&](size_t) { ran.fetch_add(1); }, 0,
                         nullptr);
    EXPECT_EQ(ran.load(), 1000u);
}

TEST(ParallelForCancel, PreCancelledTokenThrowsBeforeWork)
{
    harness::CancelToken token;
    token.cancel();
    std::atomic<size_t> ran{0};
    EXPECT_THROW(harness::parallelFor(
                     1000, [&](size_t) { ran.fetch_add(1); }, 0,
                     &token),
                 harness::CancelledError);
    // The serial path polls every 64 indices, the pool per chunk, so
    // a pre-cancelled region runs at most one dispense unit.
    EXPECT_LT(ran.load(), 1000u);
}

TEST(ParallelForCancel, MidFlightCancelStopsTheRegion)
{
    harness::CancelToken token;
    std::atomic<size_t> ran{0};
    // Index 0 sits in the first dispensed chunk; once it cancels, no
    // further chunks are dispensed, so the region cannot finish.
    const auto body = [&](size_t i) {
        if (i == 0)
            token.cancel();
        ran.fetch_add(1);
    };
    EXPECT_THROW(harness::parallelFor(100000, body, 2, &token),
                 harness::CancelledError);
    EXPECT_GT(ran.load(), 0u);
}

TEST(ParallelForCancel, DeadlineExpiryCancelsSerialPath)
{
    harness::CancelToken token;
    token.armDeadline(std::chrono::steady_clock::now() + 5ms);
    std::atomic<size_t> ran{0};
    // max_threads=1 forces the serial path and its every-64 poll.
    EXPECT_THROW(harness::parallelFor(
                     1u << 20,
                     [&](size_t) {
                         ran.fetch_add(1);
                         std::this_thread::sleep_for(10us);
                     },
                     1, &token),
                 harness::CancelledError);
    EXPECT_LT(ran.load(), 1u << 20);
}

TEST(ParallelForCancel, BodyErrorStillWinsOverLaterCancel)
{
    // First-error-wins: a body exception thrown before the cancel is
    // the error the caller sees, not CancelledError.
    harness::CancelToken token;
    EXPECT_THROW(harness::parallelFor(
                     64,
                     [&](size_t i) {
                         if (i == 0)
                             throw std::runtime_error("body first");
                         std::this_thread::sleep_for(100us);
                     },
                     1, &token),
                 std::runtime_error);
}

} // namespace
} // namespace gpuscale
