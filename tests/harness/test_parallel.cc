/**
 * @file
 * Unit tests for parallelFor and its telemetry.  The multi-worker
 * cases pass an explicit max_threads so they exercise real thread
 * contention even on single-core hosts (and under TSan).
 */

#include "harness/parallel.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <numeric>
#include <set>
#include <sstream>
#include <vector>

#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace gpuscale {
namespace harness {
namespace {

TEST(ParallelForTest, VisitsEveryIndexOnce)
{
    constexpr size_t kN = 10000;
    std::vector<std::atomic<int>> visits(kN);
    parallelFor(kN, [&](size_t i) { visits[i].fetch_add(1); },
                /*max_threads=*/4);
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelForTest, SerialPathVisitsEveryIndex)
{
    constexpr size_t kN = 100;
    std::vector<int> visits(kN, 0);
    parallelFor(kN, [&](size_t i) { ++visits[i]; },
                /*max_threads=*/1);
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0),
              static_cast<int>(kN));
}

TEST(ParallelForTest, ZeroIterationsIsANoOp)
{
    bool called = false;
    parallelFor(0, [&](size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelForTest, RecordsTelemetry)
{
    auto &reg = obs::Registry::instance();
    obs::Counter &tasks = reg.counter("parallel.tasks");
    const uint64_t tasks_before = tasks.value();

    parallelFor(500, [](size_t) {}, /*max_threads=*/4);

    EXPECT_EQ(tasks.value(), tasks_before + 500);
    EXPECT_DOUBLE_EQ(reg.gauge("parallel.workers").value(), 4.0);
    // Imbalance is bounded by [1, workers]; on a single-core host one
    // worker may drain the whole queue before the rest are scheduled,
    // so the upper bound is inclusive.
    const double imbalance =
        reg.gauge("parallel.worker.imbalance").value();
    EXPECT_GE(imbalance, 1.0);
    EXPECT_LE(imbalance, 4.0);
}

TEST(ParallelForTest, EachWorkerEmitsASpan)
{
    const std::string path =
        ::testing::TempDir() + "/parallel_workers.trace.json";
    obs::TraceSession::start(path);
    parallelFor(64, [](size_t) {}, /*max_threads=*/3);
    ASSERT_GT(obs::TraceSession::stop(), 0u);

    std::ifstream is(path);
    ASSERT_TRUE(is);
    std::stringstream buffer;
    buffer << is.rdbuf();
    const obs::JsonValue doc = obs::parseJson(buffer.str());

    size_t worker_spans = 0;
    std::set<double> tids;
    for (const auto &ev : doc.at("traceEvents").array) {
        if (ev.at("ph").str == "X" &&
            ev.at("name").str == "parallel_for.worker") {
            ++worker_spans;
            tids.insert(ev.at("tid").number);
        }
    }
    EXPECT_EQ(worker_spans, 3u);
    EXPECT_EQ(tids.size(), 3u);
}

} // namespace
} // namespace harness
} // namespace gpuscale
