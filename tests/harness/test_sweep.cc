/**
 * @file
 * Tests for the sweep harness and the parallel helper.
 */

#include "harness/sweep.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "gpu/analytic_model.hh"
#include "gpu/kernel_desc.hh"
#include "harness/parallel.hh"
#include "harness/thread_pool.hh"
#include "workloads/archetypes.hh"

namespace gpuscale {
namespace harness {
namespace {

TEST(ParallelForTest, CoversEveryIndexOnce)
{
    const size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    parallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, SingleThreadFallback)
{
    std::vector<int> order;
    parallelFor(5, [&](size_t i) { order.push_back(static_cast<int>(i)); },
                1);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroIterationsIsNoop)
{
    bool called = false;
    parallelFor(0, [&](size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(SweepTest, SurfaceMatchesDirectEstimates)
{
    const gpu::AnalyticModel model;
    const auto kernel = workloads::streaming(
        "t/s/k", {.wgs = 1024, .wi_per_wg = 256});
    const auto space = scaling::ConfigSpace::testGrid();
    const auto surface = sweepKernel(model, kernel, space);

    EXPECT_EQ(surface.kernelName(), "t/s/k");
    for (size_t i = 0; i < space.size(); ++i) {
        EXPECT_DOUBLE_EQ(surface.runtimes()[i],
                         model.estimate(kernel, space.at(i)).time_s);
    }
}

TEST(SweepTest, BatchMatchesSingleSweeps)
{
    const gpu::AnalyticModel model;
    const auto k1 = workloads::streaming(
        "t/s/k1", {.wgs = 1024, .wi_per_wg = 256});
    const auto k2 = workloads::denseCompute(
        "t/c/k2", {.wgs = 1024, .wi_per_wg = 256});
    const auto space = scaling::ConfigSpace::testGrid();

    const auto batch = sweepKernels(model, {&k1, &k2}, space);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].kernelName(), "t/s/k1");
    EXPECT_EQ(batch[1].kernelName(), "t/c/k2");

    const auto solo1 = sweepKernel(model, k1, space);
    const auto solo2 = sweepKernel(model, k2, space);
    EXPECT_EQ(batch[0].runtimes(), solo1.runtimes());
    EXPECT_EQ(batch[1].runtimes(), solo2.runtimes());
}

TEST(SweepTest, BackToBackSweepsReusePoolWorkers)
{
    const gpu::AnalyticModel model;
    const auto k1 = workloads::streaming(
        "t/s/k1", {.wgs = 1024, .wi_per_wg = 256});
    const auto k2 = workloads::denseCompute(
        "t/c/k2", {.wgs = 1024, .wi_per_wg = 256});
    const auto space = scaling::ConfigSpace::testGrid();
    const std::vector<const gpu::KernelDesc *> kernels{&k1, &k2};

    // Warm the pool with the first sweep, then assert the second
    // respawns nothing: the persistent workers are reused.
    sweepKernels(model, kernels, space);
    const uint64_t spawned_before = ThreadPool::instance().spawned();
    sweepKernels(model, kernels, space);
    EXPECT_EQ(ThreadPool::instance().spawned(), spawned_before);
}

TEST(SweepTest, EmptyBatch)
{
    const gpu::AnalyticModel model;
    const auto space = scaling::ConfigSpace::testGrid();
    EXPECT_TRUE(sweepKernels(model, {}, space).empty());
}

} // namespace
} // namespace harness
} // namespace gpuscale
