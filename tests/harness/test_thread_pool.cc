/**
 * @file
 * Unit tests for the persistent thread pool behind parallelFor():
 * exception propagation to the caller, worker reuse across calls,
 * max_threads clamping, and clean drain after a throw.  Explicit
 * max_threads values exercise real contention even on single-core
 * hosts (and under TSan).
 */

#include "harness/thread_pool.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/parallel.hh"
#include "obs/metrics.hh"

namespace gpuscale {
namespace harness {
namespace {

TEST(ThreadPoolTest, WorkerExceptionRethrownOnCaller)
{
    EXPECT_THROW(
        parallelFor(
            1000,
            [](size_t i) {
                if (i == 373)
                    throw std::runtime_error("bad kernel descriptor");
            },
            /*max_threads=*/4),
        std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionMessageSurvivesPropagation)
{
    try {
        parallelFor(
            100,
            [](size_t i) {
                if (i == 37)
                    throw std::runtime_error("descriptor 37 invalid");
            },
            /*max_threads=*/4);
        FAIL() << "parallelFor swallowed the worker exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "descriptor 37 invalid");
    }
}

TEST(ThreadPoolTest, OnlyFirstOfManyExceptionsSurfaces)
{
    // Every index throws; exactly one exception must reach the
    // caller and the call must still terminate (drained region).
    std::atomic<int> attempts{0};
    EXPECT_THROW(
        parallelFor(
            10000,
            [&](size_t i) {
                attempts.fetch_add(1);
                throw std::runtime_error("boom " + std::to_string(i));
            },
            /*max_threads=*/4),
        std::runtime_error);
    // After the first throw the dispenser shuts off: far fewer than
    // n indices should ever have started.
    EXPECT_LT(attempts.load(), 10000);
}

TEST(ThreadPoolTest, PoolUsableAgainAfterException)
{
    EXPECT_THROW(
        parallelFor(
            100, [](size_t) { throw std::runtime_error("x"); },
            /*max_threads=*/4),
        std::runtime_error);

    constexpr size_t kN = 5000;
    std::vector<std::atomic<int>> visits(kN);
    parallelFor(kN, [&](size_t i) { visits[i].fetch_add(1); },
                /*max_threads=*/4);
    for (size_t i = 0; i < kN; ++i)
        ASSERT_EQ(visits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, SerialPathPropagatesToo)
{
    EXPECT_THROW(
        parallelFor(
            10, [](size_t i) {
                if (i == 5)
                    throw std::runtime_error("serial boom");
            },
            /*max_threads=*/1),
        std::runtime_error);
}

TEST(ThreadPoolTest, WorkersReusedAcrossCalls)
{
    ThreadPool &pool = ThreadPool::instance();

    // Warm the pool, then record worker identity.
    parallelFor(256, [](size_t) {}, /*max_threads=*/4);
    const uint64_t spawned_before = pool.spawned();
    const unsigned size_before = pool.size();

    std::mutex mu;
    std::set<std::thread::id> ids;
    for (int call = 0; call < 8; ++call) {
        parallelFor(
            256,
            [&](size_t) {
                std::lock_guard<std::mutex> lock(mu);
                ids.insert(std::this_thread::get_id());
            },
            /*max_threads=*/4);
    }

    // Back-to-back calls must reuse the warm workers, not respawn.
    EXPECT_EQ(pool.spawned(), spawned_before);
    EXPECT_EQ(pool.size(), size_before);
    // Every executing thread across all 8 calls came from the same
    // persistent worker set.
    EXPECT_LE(ids.size(), static_cast<size_t>(size_before));
}

TEST(ThreadPoolTest, MaxThreadsClampsToIterationCount)
{
    auto &reg = obs::Registry::instance();
    parallelFor(3, [](size_t) {}, /*max_threads=*/64);
    // Only 3 indices exist, so only 3 workers may participate.
    EXPECT_DOUBLE_EQ(reg.gauge("parallel.workers").value(), 3.0);
}

TEST(ThreadPoolTest, MaxThreadsHonoredBelowPoolSize)
{
    auto &reg = obs::Registry::instance();
    ThreadPool::instance().ensure(4);
    parallelFor(1000, [](size_t) {}, /*max_threads=*/2);
    EXPECT_DOUBLE_EQ(reg.gauge("parallel.workers").value(), 2.0);
    // Utilization is participants over pool size, in (0, 1].
    const double util = reg.gauge("parallel.pool.utilization").value();
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0);
    EXPECT_GE(reg.gauge("parallel.pool.size").value(), 4.0);
}

TEST(ThreadPoolTest, EnsureNeverShrinksAndClamps)
{
    ThreadPool &pool = ThreadPool::instance();
    const unsigned grown = pool.ensure(6);
    EXPECT_GE(grown, 6u);
    EXPECT_EQ(pool.ensure(2), grown);
    EXPECT_LE(pool.ensure(ThreadPool::kMaxWorkers + 1000),
              ThreadPool::kMaxWorkers);
}

TEST(ThreadPoolTest, NestedParallelForDegradesToSerial)
{
    // fn itself calls parallelFor; the nested region must run
    // serially on the worker instead of deadlocking behind the
    // enclosing region.
    std::vector<std::atomic<int>> inner_visits(64);
    parallelFor(
        4,
        [&](size_t) {
            parallelFor(64, [&](size_t i) {
                inner_visits[i].fetch_add(1);
            });
        },
        /*max_threads=*/4);
    for (size_t i = 0; i < 64; ++i)
        EXPECT_EQ(inner_visits[i].load(), 4) << i;
}

TEST(ThreadPoolTest, ChunkedDispensingVisitsEveryIndexOnce)
{
    // Large n with small per-index work stresses the chunked
    // dispenser's boundary arithmetic.
    constexpr size_t kN = 100000;
    std::vector<std::atomic<int>> visits(kN);
    parallelFor(kN, [&](size_t i) { visits[i].fetch_add(1); },
                /*max_threads=*/5);
    size_t total = 0;
    for (size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(visits[i].load(), 1) << i;
        ++total;
    }
    EXPECT_EQ(total, kN);
}

TEST(ThreadPoolTest, OnWorkerThreadFalseOnCaller)
{
    EXPECT_FALSE(ThreadPool::onWorkerThread());
    std::atomic<int> on_worker{0};
    ThreadPool::instance().ensure(2);
    parallelFor(
        2,
        [&](size_t) {
            if (ThreadPool::onWorkerThread())
                on_worker.fetch_add(1);
        },
        /*max_threads=*/2);
    EXPECT_EQ(on_worker.load(), 2);
}

} // namespace
} // namespace harness
} // namespace gpuscale
