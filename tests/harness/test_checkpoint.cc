/**
 * @file
 * CensusJournal unit tests: bitwise round trip, header pinning,
 * group-commit flush visibility, and the three corruption responses
 * (mangled metadata stops replay, a bad body checksum skips one
 * record, a torn tail stops replay).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>
#include <string>
#include <vector>

#include "harness/checkpoint.hh"
#include "obs/metrics.hh"
#include "support/temp_dir.hh"

namespace gpuscale {
namespace {

uint64_t
counterValue(const char *name)
{
    return obs::Registry::instance().counter(name).value();
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << content;
}

/** Three kernels with value patterns that must survive bitwise. */
const std::vector<std::pair<std::string, std::vector<double>>> &
sampleRecords()
{
    static const std::vector<
        std::pair<std::string, std::vector<double>>>
        records = {
            {"aaa", {1.5, -2.25, 1e-300, 0.0}},
            {"bbb", {3.14159, 2.0, -0.0, 1e300}},
            {"ccc", {42.0, 0.125, 7.0, -1.0}},
        };
    return records;
}

/** Write all sample records and close the journal (dtor flushes). */
void
writeSampleJournal(const std::string &dir)
{
    harness::CensusJournal journal(dir, "m1", "g1");
    ASSERT_TRUE(journal.active());
    for (const auto &[kernel, runtimes] : sampleRecords())
        journal.record(kernel, runtimes);
}

TEST(Checkpoint, InertWithoutModelFingerprint)
{
    test::ScopedTempDir dir("ckpt_inert");
    harness::CensusJournal journal(dir.path(), "", "g1");
    EXPECT_FALSE(journal.active());
    journal.record("k", {1.0});
    std::vector<double> out;
    EXPECT_FALSE(journal.lookup("k", out));
    EXPECT_EQ(journal.loadedRecords(), 0u);
}

TEST(Checkpoint, RoundTripReplaysBitwise)
{
    test::ScopedTempDir dir("ckpt_roundtrip");
    writeSampleJournal(dir.path());

    const uint64_t replayed0 = counterValue("checkpoint.replayed");
    harness::CensusJournal reopened(dir.path(), "m1", "g1");
    EXPECT_EQ(reopened.loadedRecords(), sampleRecords().size());
    for (const auto &[kernel, runtimes] : sampleRecords()) {
        std::vector<double> out;
        ASSERT_TRUE(reopened.lookup(kernel, out)) << kernel;
        ASSERT_EQ(out.size(), runtimes.size());
        for (size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], runtimes[i]) << kernel << "[" << i << "]";
    }
    EXPECT_EQ(counterValue("checkpoint.replayed"),
              replayed0 + sampleRecords().size());
}

TEST(Checkpoint, HeaderMismatchDiscardsTheJournal)
{
    test::ScopedTempDir dir("ckpt_header");
    writeSampleJournal(dir.path());

    harness::CensusJournal other_model(dir.path(), "m2", "g1");
    EXPECT_EQ(other_model.loadedRecords(), 0u);
}

TEST(Checkpoint, BufferedRecordsBecomeVisibleOnFlush)
{
    test::ScopedTempDir dir("ckpt_flush");
    const std::string path = dir.path() + "/census.journal";

    harness::CensusJournal writer(dir.path(), "m1", "g1");
    ASSERT_TRUE(writer.active());
    const auto header_size = std::filesystem::file_size(path);
    writer.record("k", {1.0, 2.0});

    // Small records group-commit: nothing on disk yet...
    EXPECT_EQ(std::filesystem::file_size(path), header_size);
    // ...until an explicit flush (or close) lands the buffer.
    writer.flush();
    EXPECT_GT(std::filesystem::file_size(path), header_size);

    // A later run replays the flushed record.
    {
        harness::CensusJournal reader(dir.path(), "m1", "g1");
        EXPECT_EQ(reader.loadedRecords(), 1u);
        std::vector<double> out;
        EXPECT_TRUE(reader.lookup("k", out));
    }
}

TEST(Checkpoint, CorruptMetadataStopsReplayThere)
{
    test::ScopedTempDir dir("ckpt_meta");
    writeSampleJournal(dir.path());
    const std::string path = dir.path() + "/census.journal";

    // Flip a CRC hex digit on the middle record's metadata line: the
    // framing after it is untrusted, so replay keeps "aaa" and stops.
    std::string content = readFile(path);
    const size_t pos = content.find("bbb|");
    ASSERT_NE(pos, std::string::npos);
    content[pos - 9] = content[pos - 9] == '0' ? '1' : '0';
    writeFile(path, content);

    const uint64_t corrupt0 = counterValue("checkpoint.corrupt");
    harness::CensusJournal reopened(dir.path(), "m1", "g1");
    EXPECT_EQ(reopened.loadedRecords(), 1u);
    std::vector<double> out;
    EXPECT_TRUE(reopened.lookup("aaa", out));
    EXPECT_FALSE(reopened.lookup("ccc", out));
    EXPECT_EQ(counterValue("checkpoint.corrupt"), corrupt0 + 1);
}

TEST(Checkpoint, CorruptBodySkipsOnlyThatRecord)
{
    test::ScopedTempDir dir("ckpt_body");
    writeSampleJournal(dir.path());
    const std::string path = dir.path() + "/census.journal";

    // Flip one byte inside the middle record's binary body: the frame
    // is intact, so only that record fails its checksum; "ccc" after
    // it still replays.
    std::string content = readFile(path);
    const size_t pos = content.find("bbb|");
    ASSERT_NE(pos, std::string::npos);
    const size_t body = content.find('\n', pos) + 1;
    content[body] = static_cast<char>(content[body] ^ 0x01);
    writeFile(path, content);

    const uint64_t corrupt0 = counterValue("checkpoint.corrupt");
    harness::CensusJournal reopened(dir.path(), "m1", "g1");
    EXPECT_EQ(reopened.loadedRecords(), 2u);
    std::vector<double> out;
    EXPECT_TRUE(reopened.lookup("aaa", out));
    EXPECT_FALSE(reopened.lookup("bbb", out));
    EXPECT_TRUE(reopened.lookup("ccc", out));
    EXPECT_EQ(counterValue("checkpoint.corrupt"), corrupt0 + 1);
}

TEST(Checkpoint, TornTailStopsReplayAndKeepsThePrefix)
{
    test::ScopedTempDir dir("ckpt_torn");
    writeSampleJournal(dir.path());
    const std::string path = dir.path() + "/census.journal";

    // Drop the last few bytes, as a kill mid-write would: the final
    // record is torn, the prefix replays.
    std::string content = readFile(path);
    ASSERT_GT(content.size(), 5u);
    writeFile(path, content.substr(0, content.size() - 5));

    const uint64_t corrupt0 = counterValue("checkpoint.corrupt");
    harness::CensusJournal reopened(dir.path(), "m1", "g1");
    EXPECT_EQ(reopened.loadedRecords(), 2u);
    std::vector<double> out;
    EXPECT_TRUE(reopened.lookup("aaa", out));
    EXPECT_TRUE(reopened.lookup("bbb", out));
    EXPECT_FALSE(reopened.lookup("ccc", out));
    EXPECT_EQ(counterValue("checkpoint.corrupt"), corrupt0 + 1);
}

} // namespace
} // namespace gpuscale
