/**
 * @file
 * Tests for measurement-noise injection.
 */

#include "harness/noise.hh"

#include <gtest/gtest.h>

#include <cmath>

#include "gpu/analytic_model.hh"
#include "gpu/gpu_config.hh"
#include "harness/sweep.hh"
#include "scaling/taxonomy.hh"
#include "workloads/archetypes.hh"

namespace gpuscale {
namespace harness {
namespace {

TEST(NoiseTest, ZeroSigmaIsIdentity)
{
    const gpu::AnalyticModel inner;
    const NoisyModel noisy(inner, 0.0);
    const auto kernel = workloads::streaming(
        "t/n/k", {.wgs = 1024, .wi_per_wg = 256});
    const auto cfg = gpu::makeMaxConfig();
    EXPECT_DOUBLE_EQ(noisy.estimate(kernel, cfg).time_s,
                     inner.estimate(kernel, cfg).time_s);
}

TEST(NoiseTest, DeterministicPerKernelConfigSeed)
{
    const gpu::AnalyticModel inner;
    const NoisyModel a(inner, 0.05, 7);
    const NoisyModel b(inner, 0.05, 7);
    const auto kernel = workloads::streaming(
        "t/n/k", {.wgs = 1024, .wi_per_wg = 256});
    const auto cfg = gpu::makeMaxConfig();
    EXPECT_DOUBLE_EQ(a.estimate(kernel, cfg).time_s,
                     b.estimate(kernel, cfg).time_s);
}

TEST(NoiseTest, DifferentSeedsDiffer)
{
    const gpu::AnalyticModel inner;
    const NoisyModel a(inner, 0.05, 1);
    const NoisyModel b(inner, 0.05, 2);
    const auto kernel = workloads::streaming(
        "t/n/k", {.wgs = 1024, .wi_per_wg = 256});
    const auto cfg = gpu::makeMaxConfig();
    EXPECT_NE(a.estimate(kernel, cfg).time_s,
              b.estimate(kernel, cfg).time_s);
}

TEST(NoiseTest, PerturbationMatchesSigma)
{
    const gpu::AnalyticModel inner;
    const NoisyModel noisy(inner, 0.05, 3);
    const auto cfg = gpu::makeMaxConfig();

    // Sample many kernels; log-ratio spread should be ~sigma.
    double sum_sq = 0;
    const int n = 500;
    for (int i = 0; i < n; ++i) {
        auto kernel = workloads::streaming(
            "t/n/k" + std::to_string(i),
            {.wgs = 1024, .wi_per_wg = 256});
        const double ratio = noisy.estimate(kernel, cfg).time_s /
                             inner.estimate(kernel, cfg).time_s;
        sum_sq += std::log(ratio) * std::log(ratio);
    }
    EXPECT_NEAR(std::sqrt(sum_sq / n), 0.05, 0.01);
}

TEST(NoiseTest, NameReflectsDecoration)
{
    const gpu::AnalyticModel inner;
    const NoisyModel noisy(inner, 0.05);
    EXPECT_EQ(noisy.name(), "analytic+noise(0.050)");
}

TEST(NoiseTest, MildNoisePreservesClassification)
{
    // The taxonomy of a strongly characterized kernel should survive
    // realistic measurement noise.
    const gpu::AnalyticModel inner;
    const NoisyModel noisy(inner, 0.02, 11);
    const auto kernel = workloads::streaming(
        "t/n/stable", {.wgs = 16384, .wi_per_wg = 256});
    const auto space = scaling::ConfigSpace::paperGrid();

    const auto clean = scaling::classifySurface(
        sweepKernel(inner, kernel, space));
    const auto perturbed = scaling::classifySurface(
        sweepKernel(noisy, kernel, space));
    EXPECT_EQ(clean.cls, perturbed.cls);
}

} // namespace
} // namespace harness
} // namespace gpuscale
