/**
 * @file
 * SweepCache unit and concurrency tests.
 *
 * The concurrency tests run under the TSan job in CI's sanitizer
 * matrix (see .github/workflows/ci.yml), which is where lock-ordering
 * or data-race bugs in the cache would surface.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gpu/analytic_model.hh"
#include "harness/noise.hh"
#include "harness/parallel.hh"
#include "harness/sweep.hh"
#include "harness/sweep_cache.hh"
#include "obs/metrics.hh"
#include "obs/sharded.hh"
#include "scaling/config_space.hh"
#include "support/temp_dir.hh"
#include "workloads/archetypes.hh"
#include "workloads/registry.hh"

namespace gpuscale {
namespace {

uint64_t
counterValue(const char *name)
{
    return obs::Registry::instance().counter(name).value();
}

/** The sweep hot-path counters are sharded (obs/sharded.hh). */
uint64_t
shardedCounterValue(const char *name)
{
    return obs::Registry::instance().shardedCounter(name).value();
}

class SweepCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override { harness::SweepCache::instance().clear(); }
    void TearDown() override
    {
        harness::SweepCache::instance().setDirectory("");
        harness::SweepCache::instance().clear();
    }
};

TEST_F(SweepCacheTest, KeyIsStableAndSensitiveToEveryInput)
{
    const gpu::AnalyticModel model;
    const auto grid = scaling::ConfigSpace::testGrid().grid();
    const auto kernel = workloads::streaming(
        "cache/test/k", {.wgs = 64, .wi_per_wg = 256});

    const std::string key =
        harness::SweepCache::keyFor(model, kernel, grid);
    ASSERT_FALSE(key.empty());
    EXPECT_EQ(key, harness::SweepCache::keyFor(model, kernel, grid));

    // Any model input shifting must shift the key: kernel fields...
    gpu::KernelDesc other = kernel;
    other.mlp += 1.0;
    EXPECT_NE(key, harness::SweepCache::keyFor(model, other, grid));
    other = kernel;
    other.serial_fraction = 0.25;
    EXPECT_NE(key, harness::SweepCache::keyFor(model, other, grid));

    // ...grid axes...
    auto grid2 = grid;
    grid2.mem_clks_mhz.back() += 1.0;
    EXPECT_NE(key, harness::SweepCache::keyFor(model, kernel, grid2));

    // ...fixed microarchitecture parameters of the base config...
    auto grid3 = grid;
    grid3.base.l2_slices *= 2;
    EXPECT_NE(key, harness::SweepCache::keyFor(model, kernel, grid3));

    // ...and model parameters.
    gpu::AnalyticParams params;
    params.atomic_retry_scale *= 2.0;
    const gpu::AnalyticModel other_model(params);
    EXPECT_NE(key,
              harness::SweepCache::keyFor(other_model, kernel, grid));
}

TEST_F(SweepCacheTest, UncacheableModelsGetEmptyKeysAndAlwaysMiss)
{
    // The base-class fingerprint is "": models must opt in, because a
    // cross-model stale hit would be silent data corruption.
    class Uncacheable : public gpu::PerfModel
    {
      public:
        gpu::KernelPerf
        estimate(const gpu::KernelDesc &k,
                 const gpu::GpuConfig &c) const override
        {
            return inner_.estimate(k, c);
        }
        std::string name() const override { return "uncacheable"; }

      private:
        gpu::AnalyticModel inner_;
    };

    const Uncacheable model;
    EXPECT_EQ(model.fingerprint(), "");
    const auto grid = scaling::ConfigSpace::testGrid().grid();
    const auto kernel = workloads::streaming(
        "cache/test/k", {.wgs = 64, .wi_per_wg = 256});
    EXPECT_EQ(harness::SweepCache::keyFor(model, kernel, grid), "");

    std::vector<double> out;
    EXPECT_FALSE(harness::SweepCache::instance().lookup("", out));
    harness::SweepCache::instance().insert("", {1.0});
    EXPECT_EQ(harness::SweepCache::instance().entries(), 0u);
}

TEST_F(SweepCacheTest, NoisyModelIsCacheablePerSigmaAndSeed)
{
    const gpu::AnalyticModel inner;
    const harness::NoisyModel a(inner, 0.05, 1);
    const harness::NoisyModel b(inner, 0.05, 2);
    const harness::NoisyModel c(inner, 0.02, 1);

    ASSERT_FALSE(a.fingerprint().empty());
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    EXPECT_NE(a.fingerprint(), c.fingerprint());
    EXPECT_EQ(a.fingerprint(),
              harness::NoisyModel(inner, 0.05, 1).fingerprint());
}

TEST_F(SweepCacheTest, RepeatSweepHitsAndReturnsIdenticalRuntimes)
{
    const gpu::AnalyticModel model;
    const auto space = scaling::ConfigSpace::testGrid();
    const auto *kernel =
        workloads::WorkloadRegistry::instance().findKernel(
            "rodinia/hotspot/calculate_temp");
    ASSERT_NE(kernel, nullptr);

    const uint64_t hits0 = counterValue("sweep.cache.hits");
    const uint64_t misses0 = counterValue("sweep.cache.misses");
    const uint64_t estimates0 = shardedCounterValue("sweep.estimates.count");

    const auto first = harness::sweepKernel(model, *kernel, space);
    EXPECT_EQ(counterValue("sweep.cache.misses"), misses0 + 1);
    EXPECT_EQ(shardedCounterValue("sweep.estimates.count"),
              estimates0 + space.size());

    const auto second = harness::sweepKernel(model, *kernel, space);
    EXPECT_EQ(counterValue("sweep.cache.hits"), hits0 + 1);
    // A hit recomputes nothing...
    EXPECT_EQ(shardedCounterValue("sweep.estimates.count"),
              estimates0 + space.size());
    // ...and returns the exact same doubles.
    ASSERT_EQ(first.runtimes().size(), second.runtimes().size());
    for (size_t i = 0; i < first.runtimes().size(); ++i)
        EXPECT_EQ(first.runtimes()[i], second.runtimes()[i]);
}

TEST_F(SweepCacheTest, DiskLayerSurvivesInMemoryClear)
{
    const test::ScopedTempDir dir("sweep_cache_disk_test");
    harness::SweepCache::instance().setDirectory(dir.path());

    const gpu::AnalyticModel model;
    const auto space = scaling::ConfigSpace::testGrid();
    const auto *kernel =
        workloads::WorkloadRegistry::instance().findKernel(
            "rodinia/hotspot/calculate_temp");
    ASSERT_NE(kernel, nullptr);

    const auto first = harness::sweepKernel(model, *kernel, space);
    const uint64_t disk_writes = counterValue("sweep.cache.disk.writes");
    EXPECT_GE(disk_writes, 1u);

    // Clearing memory simulates a fresh process; the sweep must now
    // be served from disk, bitwise identical.
    harness::SweepCache::instance().clear();
    const uint64_t disk_hits0 = counterValue("sweep.cache.disk.hits");
    const auto second = harness::sweepKernel(model, *kernel, space);
    EXPECT_EQ(counterValue("sweep.cache.disk.hits"), disk_hits0 + 1);
    for (size_t i = 0; i < first.runtimes().size(); ++i)
        EXPECT_EQ(first.runtimes()[i], second.runtimes()[i]);
}

TEST_F(SweepCacheTest, CorruptDiskEntryDegradesToMiss)
{
    const test::ScopedTempDir dir("sweep_cache_corrupt_test");
    harness::SweepCache::instance().setDirectory(dir.path());

    const gpu::AnalyticModel model;
    const auto space = scaling::ConfigSpace::testGrid();
    const auto *kernel =
        workloads::WorkloadRegistry::instance().findKernel(
            "rodinia/hotspot/calculate_temp");
    ASSERT_NE(kernel, nullptr);
    const auto first = harness::sweepKernel(model, *kernel, space);

    // Truncate every cache file, then force re-reads from disk.
    size_t truncated = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path())) {
        std::ofstream os(entry.path(), std::ios::trunc);
        ++truncated;
    }
    ASSERT_GE(truncated, 1u);
    harness::SweepCache::instance().clear();

    const uint64_t misses0 = counterValue("sweep.cache.misses");
    const auto second = harness::sweepKernel(model, *kernel, space);
    EXPECT_EQ(counterValue("sweep.cache.misses"), misses0 + 1);
    for (size_t i = 0; i < first.runtimes().size(); ++i)
        EXPECT_EQ(first.runtimes()[i], second.runtimes()[i]);
}

TEST_F(SweepCacheTest, TwoProcessWritersNeverTearDiskEntries)
{
    // Regression test for the shared staging-file bug: diskInsert()
    // used a fixed "<path>.tmp" staging name, so two processes
    // sharing a cache directory and racing on the same key could
    // interleave their writes into one staging file and rename a torn
    // entry into place.  With per-process staging names the atomic
    // rename is the only shared step, so every observable entry is
    // one writer's complete payload.
    const test::ScopedTempDir dir("sweep_cache_two_writer_test");
    harness::SweepCache::instance().setDirectory(dir.path());

    const std::string key = "model=race-test|kernel=k|grid=g";
    const std::vector<double> payload_a = {1.25, 2.5, 3.75, 4.0625};
    const std::vector<double> payload_b = {9.5, 8.25, 7.125, 6.5, 5.0};

    const uint64_t corrupt0 = counterValue("sweep.cache.corrupt");

    const auto spawnWriter = [&](const std::vector<double> &payload) {
        const pid_t pid = ::fork();
        if (pid == 0) {
            for (int i = 0; i < 300; ++i)
                harness::SweepCache::instance().insert(key, payload);
            ::_exit(0);
        }
        return pid;
    };
    const pid_t writer_a = spawnWriter(payload_a);
    ASSERT_GT(writer_a, 0);
    const pid_t writer_b = spawnWriter(payload_b);
    ASSERT_GT(writer_b, 0);

    // Read while the writers race.  A miss is fine (nothing renamed
    // into place yet); a hit must be one complete payload, never an
    // interleaving of the two.
    for (int i = 0; i < 200; ++i) {
        harness::SweepCache::instance().clear(); // force a disk read
        std::vector<double> out;
        if (!harness::SweepCache::instance().lookup(key, out))
            continue;
        EXPECT_TRUE(out == payload_a || out == payload_b)
            << "torn entry observed on read " << i;
    }

    int status = -1;
    ASSERT_EQ(::waitpid(writer_a, &status, 0), writer_a);
    EXPECT_EQ(status, 0);
    status = -1;
    ASSERT_EQ(::waitpid(writer_b, &status, 0), writer_b);
    EXPECT_EQ(status, 0);

    // The surviving entry must be intact (diskLookup deletes corrupt
    // entries, so a torn survivor would also bump the corrupt
    // counter — assert it never moved)...
    harness::SweepCache::instance().clear();
    std::vector<double> survivor;
    ASSERT_TRUE(harness::SweepCache::instance().lookup(key, survivor));
    EXPECT_TRUE(survivor == payload_a || survivor == payload_b);
    EXPECT_EQ(counterValue("sweep.cache.corrupt"), corrupt0);

    // ...and every staging file was consumed by its rename.
    size_t stale_tmp = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path())) {
        if (entry.path().filename().string().find(".tmp") !=
            std::string::npos)
            ++stale_tmp;
    }
    EXPECT_EQ(stale_tmp, 0u);
}

TEST_F(SweepCacheTest, ConcurrentSweepsHitAndMissCoherently)
{
    // Many threads sweep the same few kernels concurrently through
    // sweepKernels(); every lookup must be either a hit or a miss
    // (lookups == hits + misses), every returned surface must be
    // bitwise identical, and TSan must stay quiet.
    const gpu::AnalyticModel model;
    const auto space = scaling::ConfigSpace::testGrid();
    const auto kernels =
        workloads::WorkloadRegistry::instance().allKernels();
    const std::vector<const gpu::KernelDesc *> subset(
        kernels.begin(), kernels.begin() + 16);

    const uint64_t hits0 = counterValue("sweep.cache.hits");
    const uint64_t misses0 = counterValue("sweep.cache.misses");

    const auto reference = harness::sweepKernels(model, subset, space);

    constexpr size_t kRounds = 8;
    std::atomic<size_t> mismatches{0};
    harness::parallelFor(kRounds, [&](size_t) {
        // Nested sweepKernels calls degrade to serial inside the
        // pool, so this exercises cache lookups from worker threads.
        const auto surfaces =
            harness::sweepKernels(model, subset, space);
        for (size_t k = 0; k < surfaces.size(); ++k) {
            if (surfaces[k].runtimes() != reference[k].runtimes())
                mismatches.fetch_add(1);
        }
    });
    EXPECT_EQ(mismatches.load(), 0u);

    const uint64_t hits = counterValue("sweep.cache.hits") - hits0;
    const uint64_t misses =
        counterValue("sweep.cache.misses") - misses0;
    // (1 + kRounds) sweeps of 16 kernels: every lookup accounted for,
    // at least one miss (the first compute) and at least one hit.
    EXPECT_EQ(hits + misses, (1 + kRounds) * subset.size());
    EXPECT_GE(misses, subset.size());
    EXPECT_GE(hits, subset.size());
}

TEST_F(SweepCacheTest, ConcurrentMixedModelsNeverCrossContaminate)
{
    // Two cacheable models with different parameters sweeping the
    // same kernels concurrently must never serve each other's data.
    const gpu::AnalyticModel clean;
    const harness::NoisyModel noisy(clean, 0.1, 3);
    const auto space = scaling::ConfigSpace::testGrid();
    const auto kernels =
        workloads::WorkloadRegistry::instance().allKernels();
    const std::vector<const gpu::KernelDesc *> subset(
        kernels.begin(), kernels.begin() + 8);

    const auto ref_clean = harness::sweepKernels(clean, subset, space);
    const auto ref_noisy = harness::sweepKernels(noisy, subset, space);

    std::atomic<size_t> mismatches{0};
    harness::parallelFor(8, [&](size_t round) {
        const bool use_noisy = round % 2 == 1;
        const auto surfaces = harness::sweepKernels(
            use_noisy ? static_cast<const gpu::PerfModel &>(noisy)
                      : static_cast<const gpu::PerfModel &>(clean),
            subset, space);
        const auto &ref = use_noisy ? ref_noisy : ref_clean;
        for (size_t k = 0; k < surfaces.size(); ++k) {
            if (surfaces[k].runtimes() != ref[k].runtimes())
                mismatches.fetch_add(1);
        }
    });
    EXPECT_EQ(mismatches.load(), 0u);
}

} // namespace
} // namespace gpuscale
