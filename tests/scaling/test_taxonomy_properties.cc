/**
 * @file
 * Property-based tests for classifier invariants.
 *
 * The decision tree in classifySurface() is specified in terms of
 * performance *ratios* along each axis, which implies three algebraic
 * invariants any refactor must preserve:
 *
 *  - runtime-scale invariance: multiplying every runtime by a
 *    positive constant (changing units, a faster host clock) cannot
 *    change any kernel's class;
 *  - row-permutation invariance: the CSV ingestion path must produce
 *    the same surfaces regardless of sample order, so externally
 *    measured data classifies identically however it was logged;
 *  - zero-noise identity: NoisyModel with sigma = 0 is the identity
 *    decorator — bitwise, so the noise study's sigma -> 0 limit is
 *    exactly the clean census.
 *
 * Each property is checked across the whole 267-kernel zoo, with a
 * deterministic Rng driving the scale factors and permutations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "base/random.hh"
#include "gpu/analytic_model.hh"
#include "harness/noise.hh"
#include "harness/sweep.hh"
#include "scaling/report.hh"
#include "scaling/taxonomy.hh"
#include "workloads/registry.hh"

namespace gpuscale {
namespace {

/** Surfaces for the whole zoo on the fast grid, computed once. */
const std::vector<scaling::ScalingSurface> &
zooSurfaces()
{
    static const std::vector<scaling::ScalingSurface> surfaces = [] {
        const gpu::AnalyticModel model;
        return harness::sweepKernels(
            model, workloads::WorkloadRegistry::instance().allKernels(),
            scaling::ConfigSpace::testGrid());
    }();
    return surfaces;
}

TEST(TaxonomyPropertyTest, ClassInvariantUnderRuntimeScaling)
{
    Rng rng(2026);
    for (const auto &surface : zooSurfaces()) {
        const auto base_cls = scaling::classifySurface(surface);
        // Span nanosecond-vs-hour magnitudes on both sides of 1.
        for (const double scale :
             {1e-6, 0.1, 3.0, 1e6, rng.uniform(1e-3, 1e3)}) {
            std::vector<double> scaled = surface.runtimes();
            for (double &r : scaled)
                r *= scale;
            const auto cls = scaling::classifySurface(
                scaling::ScalingSurface(surface.kernelName(),
                                        surface.space(),
                                        std::move(scaled)));
            EXPECT_EQ(base_cls.cls, cls.cls)
                << surface.kernelName() << " at scale " << scale;
        }
    }
}

TEST(TaxonomyPropertyTest, CsvIngestionInvariantUnderRowPermutation)
{
    // Dump a handful of surfaces to CSV, shuffle the sample rows, and
    // re-ingest: the inferred grid and the classes must not move.
    Rng rng(7);
    const auto &surfaces = zooSurfaces();
    for (size_t s = 0; s < surfaces.size(); s += 53) {
        const auto &surface = surfaces[s];
        std::ostringstream os;
        scaling::writeSurfaceCsv(os, surface);

        std::istringstream is(os.str());
        std::string header, line;
        ASSERT_TRUE(std::getline(is, header));
        std::vector<std::string> rows;
        while (std::getline(is, line)) {
            if (!line.empty())
                rows.push_back(line);
        }
        // Fisher–Yates with the repo Rng (std::shuffle's dance is
        // implementation-defined; this keeps failures reproducible).
        for (size_t i = rows.size(); i > 1; --i) {
            const auto j = static_cast<size_t>(
                rng.uniformInt(0, static_cast<int64_t>(i) - 1));
            std::swap(rows[i - 1], rows[j]);
        }

        std::string shuffled = header + "\n";
        for (const auto &row : rows)
            shuffled += row + "\n";

        const auto parsed = scaling::readSurfacesCsv(shuffled);
        ASSERT_EQ(parsed.size(), 1u) << surface.kernelName();
        ASSERT_EQ(parsed[0].runtimes().size(),
                  surface.runtimes().size());
        const auto before = scaling::classifySurface(surface);
        const auto after = scaling::classifySurface(parsed[0]);
        EXPECT_EQ(before.cls, after.cls) << surface.kernelName();
    }
}

TEST(TaxonomyPropertyTest, ZeroNoiseReproducesCleanClassBitwise)
{
    const gpu::AnalyticModel inner;
    const harness::NoisyModel clean(inner, 0.0, 99);
    const auto space = scaling::ConfigSpace::testGrid();
    const auto kernels =
        workloads::WorkloadRegistry::instance().allKernels();

    for (size_t k = 0; k < kernels.size(); k += 29) {
        const auto *kernel = kernels[k];
        for (size_t i = 0; i < space.size(); ++i) {
            EXPECT_EQ(clean.estimate(*kernel, space.at(i)).time_s,
                      inner.estimate(*kernel, space.at(i)).time_s)
                << kernel->name << " config " << i;
        }
    }

    // End-to-end: sigma = 0 classes equal the clean classes for the
    // whole zoo (surfaces, not just single estimates).
    const auto clean_surfaces = harness::sweepKernels(
        clean, kernels, space);
    const auto &base_surfaces = zooSurfaces();
    ASSERT_EQ(clean_surfaces.size(), base_surfaces.size());
    for (size_t i = 0; i < clean_surfaces.size(); ++i) {
        EXPECT_EQ(
            scaling::classifySurface(clean_surfaces[i]).cls,
            scaling::classifySurface(base_surfaces[i]).cls)
            << clean_surfaces[i].kernelName();
    }
}

TEST(TaxonomyPropertyTest, NoiseAtTinySigmaRarelyMovesClasses)
{
    // Monotonicity in sigma at the small end: a sigma far below the
    // classifier's ratio thresholds must leave almost every kernel in
    // its clean class (the A4 experiment's premise).
    const gpu::AnalyticModel inner;
    const harness::NoisyModel tiny(inner, 1e-4, 5);
    const auto kernels =
        workloads::WorkloadRegistry::instance().allKernels();
    const auto noisy_surfaces = harness::sweepKernels(
        tiny, kernels, scaling::ConfigSpace::testGrid());

    const auto &base_surfaces = zooSurfaces();
    size_t moved = 0;
    for (size_t i = 0; i < noisy_surfaces.size(); ++i) {
        if (scaling::classifySurface(noisy_surfaces[i]).cls !=
            scaling::classifySurface(base_surfaces[i]).cls)
            ++moved;
    }
    // Border-sitting kernels may legitimately flip; mass movement
    // means the classifier lost its noise margin.
    EXPECT_LE(moved, kernels.size() / 20)
        << moved << " of " << kernels.size()
        << " kernels changed class under sigma=1e-4";
}

} // namespace
} // namespace gpuscale
