/**
 * @file
 * Edge-case tests for the template-based scaling predictor.
 *
 * test_predictor.cc covers the happy path on the shared census; these
 * exercise the degenerate inputs a bring-your-own-measurements user
 * can feed it: one probe, constant probes, single-point axes, and the
 * malformed-argument fatals.
 */

#include "scaling/predictor.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "base/logging.hh"
#include "gpu/analytic_model.hh"
#include "harness/experiment.hh"

namespace gpuscale {
namespace scaling {
namespace {

const harness::CensusResult &
census()
{
    static const harness::CensusResult result =
        harness::runCensus(gpu::AnalyticModel{});
    return result;
}

const ScalingPredictor &
predictor()
{
    static const ScalingPredictor p(census().surfaces,
                                    census().classifications);
    return p;
}

TEST(PredictorEdgeTest, SingleProbePredictsThroughThatPoint)
{
    // One measurement is enough to pick a template and scale it: the
    // prediction must pass (near-)exactly through the probe and stay
    // finite and positive everywhere else.
    const auto &surface = census().surfaces.front();
    const size_t idx = census().space.size() / 2;
    const std::vector<size_t> probes{idx};
    const std::vector<double> runtimes{surface.runtimes()[idx]};

    const auto predicted = predictor().predict(probes, runtimes);
    ASSERT_EQ(predicted.size(), census().space.size());
    EXPECT_NEAR(predicted[idx], runtimes[0], 1e-9 * runtimes[0]);
    for (const double p : predicted) {
        EXPECT_TRUE(std::isfinite(p));
        EXPECT_GT(p, 0.0);
    }
    // matchClass must return one of the learned classes, not garbage.
    const TaxonomyClass cls = predictor().matchClass(probes, runtimes);
    EXPECT_LT(static_cast<size_t>(cls), kNumTaxonomyClasses);
}

TEST(PredictorEdgeTest, IdenticalProbeRuntimesStayFinite)
{
    // A perfectly flat probe response (the LaunchBound signature)
    // must not divide by a zero dynamic range anywhere in the fit.
    const auto probes =
        ScalingPredictor::defaultProbes(census().space);
    const std::vector<double> flat(probes.size(), 2.5e-3);

    const auto predicted = predictor().predict(probes, flat);
    ASSERT_EQ(predicted.size(), census().space.size());
    for (const double p : predicted) {
        EXPECT_TRUE(std::isfinite(p));
        EXPECT_GT(p, 0.0);
    }
    const TaxonomyClass cls = predictor().matchClass(probes, flat);
    EXPECT_LT(static_cast<size_t>(cls), kNumTaxonomyClasses);
}

TEST(PredictorEdgeTest, SinglePointAxesGrid)
{
    // A 1x1x1 "grid" is the smallest legal space.  classifySurface
    // needs curves to walk, so the classifications are hand-built;
    // the predictor must still learn templates and predict the one
    // point exactly.
    const ConfigSpace space({8}, {1000.0}, {1200.0});
    ASSERT_EQ(space.size(), 1u);

    std::vector<ScalingSurface> surfaces;
    surfaces.emplace_back("tiny/a", space, std::vector<double>{1.0e-3});
    surfaces.emplace_back("tiny/b", space, std::vector<double>{4.0e-3});
    std::vector<KernelClassification> classifications(2);
    classifications[0].kernel = "tiny/a";
    classifications[0].cls = TaxonomyClass::CoreBound;
    classifications[1].kernel = "tiny/b";
    classifications[1].cls = TaxonomyClass::MemoryBound;

    const ScalingPredictor tiny(surfaces, classifications);
    EXPECT_EQ(tiny.numTemplates(), 2u);

    const std::vector<size_t> probes{0};
    const std::vector<double> runtimes{7.0e-4};
    const auto predicted = tiny.predict(probes, runtimes);
    ASSERT_EQ(predicted.size(), 1u);
    EXPECT_NEAR(predicted[0], runtimes[0], 1e-12);

    const auto defaults = ScalingPredictor::defaultProbes(space);
    ASSERT_FALSE(defaults.empty());
    for (const size_t idx : defaults)
        EXPECT_EQ(idx, 0u);
}

TEST(PredictorEdgeTest, EvaluatePredictionOnIdenticalSurfacesIsZero)
{
    const auto &truth = census().surfaces.front().runtimes();
    const auto err = evaluatePrediction(truth, truth);
    EXPECT_EQ(err.mape, 0.0);
    EXPECT_EQ(err.median_ape, 0.0);
    EXPECT_EQ(err.p90_ape, 0.0);
}

class PredictorEdgeFatalTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogThrowOnTerminate(true); }
    void TearDown() override { setLogThrowOnTerminate(false); }
};

TEST_F(PredictorEdgeFatalTest, RejectsMismatchedProbeVectors)
{
    const std::vector<size_t> two_idx{0, 1};
    const std::vector<double> one_rt{1.0};
    EXPECT_THROW(predictor().predict(two_idx, one_rt),
                 std::runtime_error);
    EXPECT_THROW(predictor().matchClass(two_idx, one_rt),
                 std::runtime_error);
}

TEST_F(PredictorEdgeFatalTest, RejectsNonPositiveRuntimes)
{
    const std::vector<size_t> probes{0};
    const std::vector<double> zero{0.0};
    EXPECT_THROW(predictor().predict(probes, zero),
                 std::runtime_error);
}

TEST_F(PredictorEdgeFatalTest, RejectsEmptyTrainingSet)
{
    EXPECT_THROW(ScalingPredictor({}, {}), std::runtime_error);

    // Surfaces/classifications that disagree in count are equally
    // unusable as training data.
    std::vector<ScalingSurface> surfaces;
    surfaces.push_back(census().surfaces.front());
    EXPECT_THROW(ScalingPredictor(surfaces, {}), std::runtime_error);
}

TEST_F(PredictorEdgeFatalTest, EvaluatePredictionRejectsBadInput)
{
    EXPECT_THROW(evaluatePrediction({}, {}), std::runtime_error);

    const std::vector<double> one{1.0};
    const std::vector<double> two{1.0, 2.0};
    EXPECT_THROW(evaluatePrediction(one, two), std::runtime_error);

    const std::vector<double> bad_truth{0.0};
    EXPECT_THROW(evaluatePrediction(one, bad_truth),
                 std::runtime_error);
}

} // namespace
} // namespace scaling
} // namespace gpuscale
