/**
 * @file
 * Tests for k-means clustering and the agreement metrics.
 */

#include "scaling/cluster.hh"

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "base/random.hh"

namespace gpuscale {
namespace scaling {
namespace {

/** Two well-separated blobs in 2D. */
std::vector<std::vector<double>>
twoBlobs(size_t per_blob, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<double>> out;
    for (size_t i = 0; i < per_blob; ++i) {
        out.push_back({rng.normal(0.0, 0.1), rng.normal(0.0, 0.1)});
    }
    for (size_t i = 0; i < per_blob; ++i) {
        out.push_back({rng.normal(10.0, 0.1), rng.normal(10.0, 0.1)});
    }
    return out;
}

TEST(KmeansTest, SeparatesTwoBlobs)
{
    const auto vectors = twoBlobs(50, 1);
    const ClusterResult result = kmeans(vectors, 2, 7);

    // All points in the first half share a cluster, all in the second
    // half share the other.
    const int first = result.assignment[0];
    const int second = result.assignment[50];
    EXPECT_NE(first, second);
    for (size_t i = 0; i < 50; ++i)
        EXPECT_EQ(result.assignment[i], first);
    for (size_t i = 50; i < 100; ++i)
        EXPECT_EQ(result.assignment[i], second);
    EXPECT_LT(result.inertia, 10.0);
}

TEST(KmeansTest, Deterministic)
{
    const auto vectors = twoBlobs(30, 2);
    const ClusterResult a = kmeans(vectors, 3, 99);
    const ClusterResult b = kmeans(vectors, 3, 99);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KmeansTest, KEqualsNGivesZeroInertia)
{
    std::vector<std::vector<double>> vectors{
        {0, 0}, {1, 1}, {2, 2}, {3, 3}};
    const ClusterResult result = kmeans(vectors, 4, 1);
    EXPECT_NEAR(result.inertia, 0.0, 1e-18);
}

TEST(KmeansTest, SingleClusterCentroidIsMean)
{
    std::vector<std::vector<double>> vectors{{0, 0}, {2, 0}, {4, 6}};
    const ClusterResult result = kmeans(vectors, 1, 1);
    ASSERT_EQ(result.centroids.size(), 1u);
    EXPECT_NEAR(result.centroids[0][0], 2.0, 1e-12);
    EXPECT_NEAR(result.centroids[0][1], 2.0, 1e-12);
}

TEST(KmeansTest, InertiaDecreasesWithK)
{
    const auto vectors = twoBlobs(40, 5);
    double prev = 1e300;
    for (int k = 1; k <= 4; ++k) {
        const double inertia = kmeans(vectors, k, 11).inertia;
        EXPECT_LE(inertia, prev * (1 + 1e-9));
        prev = inertia;
    }
}

KernelClassification
labelled(const std::string &name, TaxonomyClass cls)
{
    KernelClassification c;
    c.kernel = name;
    c.cls = cls;
    return c;
}

TEST(AgreementTest, PurityPerfectAndMixed)
{
    const std::vector<KernelClassification> labels{
        labelled("a", TaxonomyClass::CoreBound),
        labelled("b", TaxonomyClass::CoreBound),
        labelled("c", TaxonomyClass::MemoryBound),
        labelled("d", TaxonomyClass::MemoryBound)};

    EXPECT_DOUBLE_EQ(clusterPurity({0, 0, 1, 1}, labels), 1.0);
    EXPECT_DOUBLE_EQ(clusterPurity({0, 1, 0, 1}, labels), 0.5);
    // One cluster holding everything: purity = majority share.
    EXPECT_DOUBLE_EQ(clusterPurity({0, 0, 0, 0}, labels), 0.5);
}

TEST(AgreementTest, AriPerfectAndIndependent)
{
    const std::vector<KernelClassification> labels{
        labelled("a", TaxonomyClass::CoreBound),
        labelled("b", TaxonomyClass::CoreBound),
        labelled("c", TaxonomyClass::MemoryBound),
        labelled("d", TaxonomyClass::MemoryBound)};

    EXPECT_NEAR(adjustedRandIndex({0, 0, 1, 1}, labels), 1.0, 1e-12);
    // Label permutation does not matter.
    EXPECT_NEAR(adjustedRandIndex({5, 5, 2, 2}, labels), 1.0, 1e-12);
    // A partition splitting each class evenly scores low.
    EXPECT_LT(adjustedRandIndex({0, 1, 0, 1}, labels), 0.1);
}

TEST(AgreementTest, AriHandlesSingletonPartitions)
{
    const std::vector<KernelClassification> labels{
        labelled("a", TaxonomyClass::CoreBound),
        labelled("b", TaxonomyClass::CoreBound)};
    // Both partitions are single-cluster: identical.
    EXPECT_NEAR(adjustedRandIndex({0, 0}, labels), 1.0, 1e-12);
}

class ClusterErrorTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogThrowOnTerminate(true); }
    void TearDown() override { setLogThrowOnTerminate(false); }
};

TEST_F(ClusterErrorTest, RejectsBadInputs)
{
    std::vector<std::vector<double>> vectors{{1, 2}, {3, 4}};
    EXPECT_THROW(kmeans(vectors, 0, 1), std::runtime_error);
    EXPECT_THROW(kmeans(vectors, 3, 1), std::runtime_error);

    std::vector<std::vector<double>> ragged{{1, 2}, {3}};
    EXPECT_THROW(kmeans(ragged, 1, 1), std::runtime_error);

    EXPECT_THROW(clusterPurity({0}, {}), std::runtime_error);
}

} // namespace
} // namespace scaling
} // namespace gpuscale
