/**
 * @file
 * Tests for the template-based scaling predictor.
 */

#include "scaling/predictor.hh"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "base/logging.hh"
#include "gpu/analytic_model.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "workloads/archetypes.hh"

namespace gpuscale {
namespace scaling {
namespace {

const harness::CensusResult &
census()
{
    static const harness::CensusResult result =
        harness::runCensus(gpu::AnalyticModel{});
    return result;
}

const ScalingPredictor &
predictor()
{
    static const ScalingPredictor p(census().surfaces,
                                    census().classifications);
    return p;
}

std::vector<double>
probeRuntimes(const ScalingSurface &surface,
              const std::vector<size_t> &probes)
{
    std::vector<double> out;
    for (size_t idx : probes)
        out.push_back(surface.runtimes()[idx]);
    return out;
}

TEST(PredictorTest, LearnsOneTemplatePerPopulatedClass)
{
    const auto hist = classHistogram(census().classifications);
    size_t populated = 0;
    for (size_t n : hist)
        populated += n > 0;
    EXPECT_EQ(predictor().numTemplates(), populated);
}

TEST(PredictorTest, DefaultProbesAreDistinctCorners)
{
    const auto probes =
        ScalingPredictor::defaultProbes(census().space);
    EXPECT_EQ(probes.size(), 6u);
    std::set<size_t> unique(probes.begin(), probes.end());
    EXPECT_EQ(unique.size(), probes.size());
    for (size_t idx : probes)
        EXPECT_LT(idx, census().space.size());
}

TEST(PredictorTest, PredictsTrainingMembersAccurately)
{
    // In-sample sanity: predicting a training kernel from its own
    // probes should land close to its surface.
    const auto probes =
        ScalingPredictor::defaultProbes(census().space);
    const auto &surface = census().surfaces.front();
    const auto predicted = predictor().predict(
        probes, probeRuntimes(surface, probes));
    const auto err =
        evaluatePrediction(predicted, surface.runtimes());
    EXPECT_LT(err.median_ape, 0.35);
}

TEST(PredictorTest, MatchClassRecoversStrongClasses)
{
    // A fresh core-bound kernel (not in the zoo) should match the
    // core-bound template from its probes alone.
    const gpu::AnalyticModel model;
    const auto kernel = workloads::denseCompute(
        "fresh/dense/k", {.wgs = 6000, .wi_per_wg = 256,
                          .launches = 1, .intensity = 1.7});
    const auto surface =
        harness::sweepKernel(model, kernel, census().space);
    const auto probes =
        ScalingPredictor::defaultProbes(census().space);
    EXPECT_EQ(predictor().matchClass(
                  probes, probeRuntimes(surface, probes)),
              TaxonomyClass::CoreBound);
}

TEST(PredictorTest, PredictsUnseenKernelWithinTolerance)
{
    const gpu::AnalyticModel model;
    const auto kernel = workloads::streaming(
        "fresh/stream/k", {.wgs = 12000, .wi_per_wg = 256,
                           .launches = 1, .intensity = 0.7});
    const auto surface =
        harness::sweepKernel(model, kernel, census().space);
    const auto probes =
        ScalingPredictor::defaultProbes(census().space);
    const auto predicted = predictor().predict(
        probes, probeRuntimes(surface, probes));
    const auto err =
        evaluatePrediction(predicted, surface.runtimes());
    EXPECT_LT(err.mape, 0.30);
}

TEST(PredictorTest, MoreProbesNeverHurtMuch)
{
    const gpu::AnalyticModel model;
    const auto kernel = workloads::stencil(
        "fresh/sten/k", {.wgs = 3000, .wi_per_wg = 256}, 24.0);
    const auto surface =
        harness::sweepKernel(model, kernel, census().space);

    // 2 probes: grid corners only.
    const std::vector<size_t> two{0, census().space.size() - 1};
    const auto err2 = evaluatePrediction(
        predictor().predict(two, probeRuntimes(surface, two)),
        surface.runtimes());

    const auto six = ScalingPredictor::defaultProbes(census().space);
    const auto err6 = evaluatePrediction(
        predictor().predict(six, probeRuntimes(surface, six)),
        surface.runtimes());
    EXPECT_LE(err6.mape, err2.mape * 1.5);
}

TEST(PredictorTest, ScaleInvariance)
{
    // Scaling all probe runtimes by k scales the prediction by k.
    const auto probes =
        ScalingPredictor::defaultProbes(census().space);
    const auto &surface = census().surfaces.front();
    auto runtimes = probeRuntimes(surface, probes);
    const auto base = predictor().predict(probes, runtimes);
    for (double &r : runtimes)
        r *= 7.0;
    const auto scaled = predictor().predict(probes, runtimes);
    for (size_t i = 0; i < base.size(); ++i)
        EXPECT_NEAR(scaled[i] / base[i], 7.0, 1e-9);
}

class PredictorErrorTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogThrowOnTerminate(true); }
    void TearDown() override { setLogThrowOnTerminate(false); }
};

TEST_F(PredictorErrorTest, RejectsBadInput)
{
    const std::vector<size_t> probes{0};
    const std::vector<double> bad_runtime{-1.0};
    EXPECT_THROW(predictor().predict(probes, bad_runtime),
                 std::runtime_error);

    const std::vector<size_t> out_of_range{99999};
    const std::vector<double> ok{1.0};
    EXPECT_THROW(predictor().predict(out_of_range, ok),
                 std::runtime_error);

    EXPECT_THROW(predictor().predict({}, {}), std::runtime_error);
}

} // namespace
} // namespace scaling
} // namespace gpuscale
