/**
 * @file
 * Tests for the report emitters, including the measured-surface CSV
 * round trip that backs the bring-your-own-data workflow.
 */

#include "scaling/report.hh"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "base/logging.hh"
#include "gpu/analytic_model.hh"
#include "harness/sweep.hh"
#include "workloads/archetypes.hh"

namespace gpuscale {
namespace scaling {
namespace {

ScalingSurface
sampleSurface(const std::string &name = "t/r/k")
{
    const gpu::AnalyticModel model;
    auto kernel = workloads::streaming(
        "x", {.wgs = 1024, .wi_per_wg = 256});
    kernel.name = name;
    return harness::sweepKernel(model, kernel,
                                ConfigSpace::testGrid());
}

TEST(ReportTest, ConfigSpaceTableContents)
{
    const auto table = configSpaceTable(ConfigSpace::paperGrid());
    const std::string out = table.render();
    EXPECT_NE(out.find("11.00x"), std::string::npos);
    EXPECT_NE(out.find("5.00x"), std::string::npos);
    EXPECT_NE(out.find("8.33x"), std::string::npos);
    EXPECT_NE(out.find("891"), std::string::npos);
}

TEST(ReportTest, HistogramTableSharesSumTo100)
{
    KernelClassification a;
    a.kernel = "s/p/a";
    a.cls = TaxonomyClass::CoreBound;
    KernelClassification b = a;
    b.kernel = "s/p/b";
    b.cls = TaxonomyClass::MemoryBound;

    const auto table = classHistogramTable({a, b});
    const std::string out = table.render();
    EXPECT_NE(out.find("50.0%"), std::string::npos);
    EXPECT_NE(out.find("total"), std::string::npos);
}

TEST(ReportTest, NonObviousTableFiltersClasses)
{
    KernelClassification intuitive;
    intuitive.kernel = "s/p/core";
    intuitive.cls = TaxonomyClass::CoreBound;
    KernelClassification adverse;
    adverse.kernel = "s/p/adverse";
    adverse.cls = TaxonomyClass::CuAdverse;

    const auto table = nonObviousTable({intuitive, adverse});
    const std::string out = table.render();
    EXPECT_EQ(out.find("s/p/core"), std::string::npos);
    EXPECT_NE(out.find("s/p/adverse"), std::string::npos);
}

TEST(ReportTest, SurfaceCsvRoundTrip)
{
    const ScalingSurface original = sampleSurface();
    std::ostringstream os;
    writeSurfaceCsv(os, original);

    const auto surfaces = readSurfacesCsv(os.str());
    ASSERT_EQ(surfaces.size(), 1u);
    const auto &restored = surfaces.front();
    EXPECT_EQ(restored.kernelName(), original.kernelName());
    ASSERT_EQ(restored.space().size(), original.space().size());
    for (size_t i = 0; i < original.runtimes().size(); ++i) {
        EXPECT_DOUBLE_EQ(restored.runtimes()[i],
                         original.runtimes()[i])
            << i;
    }
    EXPECT_EQ(restored.space().cuValues(),
              original.space().cuValues());
}

TEST(ReportTest, MultiKernelCsvPreservesOrder)
{
    const ScalingSurface a = sampleSurface("t/r/a");
    const ScalingSurface b = sampleSurface("t/r/b");
    std::ostringstream os;
    writeSurfaceCsv(os, a);
    // Append b's rows without a second header.
    std::ostringstream os_b;
    writeSurfaceCsv(os_b, b);
    const std::string b_text = os_b.str();
    os << b_text.substr(b_text.find('\n') + 1);

    const auto surfaces = readSurfacesCsv(os.str());
    ASSERT_EQ(surfaces.size(), 2u);
    EXPECT_EQ(surfaces[0].kernelName(), "t/r/a");
    EXPECT_EQ(surfaces[1].kernelName(), "t/r/b");
}

TEST(ReportTest, ClassifyingRestoredSurfaceMatches)
{
    const ScalingSurface original = sampleSurface();
    std::ostringstream os;
    writeSurfaceCsv(os, original);
    const auto restored = readSurfacesCsv(os.str());
    EXPECT_EQ(classifySurface(restored.front()).cls,
              classifySurface(original).cls);
}

class ReportErrorTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogThrowOnTerminate(true); }
    void TearDown() override { setLogThrowOnTerminate(false); }
};

TEST_F(ReportErrorTest, IncompleteGridIsFatal)
{
    const ScalingSurface original = sampleSurface();
    std::ostringstream os;
    writeSurfaceCsv(os, original);
    // Drop the last sample row.
    std::string text = os.str();
    text.erase(text.rfind('\n', text.size() - 2) + 1);
    EXPECT_THROW(readSurfacesCsv(text), std::runtime_error);
}

TEST_F(ReportErrorTest, MissingColumnIsFatal)
{
    EXPECT_THROW(readSurfacesCsv("a,b\n1,2\n"), std::runtime_error);
}

} // namespace
} // namespace scaling
} // namespace gpuscale
