/**
 * @file
 * Property tests for the sparse-sample census predictor.
 *
 * The estimator's contract (docs/prediction.md) is behavioural, so
 * the tests are too: a full-grid fit must reproduce the dense census
 * bitwise, reconstructions must not care about sample order, and the
 * seeded sample planners must pick identical sequences across runs
 * and across threads (`ctest -j` runs this binary concurrently with
 * the rest of the suite).
 */

#include "scaling/sparse_predictor.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "base/logging.hh"
#include "base/random.hh"
#include "gpu/analytic_model.hh"
#include "harness/parallel.hh"
#include "harness/sweep.hh"
#include "workloads/registry.hh"

namespace gpuscale {
namespace scaling {
namespace {

/** Dense truth for one kernel on the fast 3x3x3 grid. */
ScalingSurface
denseSurface(const std::string &name)
{
    static const gpu::AnalyticModel model;
    const auto *kernel =
        workloads::WorkloadRegistry::instance().findKernel(name);
    EXPECT_NE(kernel, nullptr) << name;
    return harness::sweepKernel(model, *kernel,
                                ConfigSpace::testGrid());
}

std::vector<size_t>
allIndices(const ConfigSpace &space)
{
    std::vector<size_t> idx(space.size());
    for (size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    return idx;
}

std::vector<double>
runtimesAt(const ScalingSurface &surface,
           const std::vector<size_t> &indices)
{
    std::vector<double> out;
    out.reserve(indices.size());
    for (const size_t flat : indices)
        out.push_back(surface.runtimes()[flat]);
    return out;
}

TEST(SparsePredictorTest, FullGridFitReproducesDenseCensusBitwise)
{
    // Measured points pass through untouched, so fitting on every
    // grid point *is* the dense census — surface and classification
    // must match bitwise for every noise-free zoo kernel.
    const gpu::AnalyticModel model;
    const auto space = ConfigSpace::testGrid();
    const SparsePredictor predictor(space);
    const auto indices = allIndices(space);

    const auto kernels =
        workloads::WorkloadRegistry::instance().allKernels();
    ASSERT_FALSE(kernels.empty());
    for (const auto *kernel : kernels) {
        const auto dense =
            harness::sweepKernel(model, *kernel, space);
        const auto rec = predictor.reconstruct(
            kernel->name, indices, dense.runtimes());
        ASSERT_EQ(rec.surface.runtimes(), dense.runtimes())
            << kernel->name;
        EXPECT_EQ(rec.cls.cls, classifySurface(dense).cls)
            << kernel->name;
        EXPECT_EQ(rec.samples, space.size());
    }
}

TEST(SparsePredictorTest, ReconstructionInvariantToSampleOrder)
{
    const auto space = ConfigSpace::testGrid();
    const SparsePredictor predictor(space);
    const auto dense =
        denseSurface("rodinia/hotspot/calculate_temp");

    auto indices = predictor.lhsPlan(12);
    auto runtimes = runtimesAt(dense, indices);
    const auto ordered = predictor.reconstruct(
        dense.kernelName(), indices, runtimes);

    // Deterministic shuffles: every permutation must reconstruct the
    // exact same bytes.
    Rng rng(7);
    for (int trial = 0; trial < 4; ++trial) {
        for (size_t i = indices.size(); i-- > 1;) {
            const size_t j = static_cast<size_t>(
                rng.uniformInt(0, static_cast<int64_t>(i)));
            std::swap(indices[i], indices[j]);
            std::swap(runtimes[i], runtimes[j]);
        }
        const auto shuffled = predictor.reconstruct(
            dense.kernelName(), indices, runtimes);
        ASSERT_EQ(shuffled.surface.runtimes(),
                  ordered.surface.runtimes());
        ASSERT_EQ(shuffled.lower, ordered.lower);
        ASSERT_EQ(shuffled.upper, ordered.upper);
        EXPECT_EQ(shuffled.cls.cls, ordered.cls.cls);
        EXPECT_EQ(shuffled.confidence, ordered.confidence);
        EXPECT_EQ(shuffled.band_crosses_boundary,
                  ordered.band_crosses_boundary);
    }
}

TEST(SparsePredictorTest, LhsPlanIsDeterministicDistinctAndCovering)
{
    const auto space = ConfigSpace::testGrid();
    SparseFitOptions options;
    options.seed = 42;
    const SparsePredictor a(space, options);
    const SparsePredictor b(space, options);

    const auto plan_a = a.lhsPlan(14);
    const auto plan_b = b.lhsPlan(14);
    EXPECT_EQ(plan_a, plan_b);
    EXPECT_EQ(plan_a.size(), 14u);

    const std::set<size_t> distinct(plan_a.begin(), plan_a.end());
    EXPECT_EQ(distinct.size(), plan_a.size());

    // Every axis level must be touched (the anchor slices alone
    // guarantee it; the draw must not break it).
    std::set<size_t> cu, core, mem;
    for (const size_t flat : plan_a) {
        const auto axis = space.unflatten(flat);
        cu.insert(axis.cu);
        core.insert(axis.core);
        mem.insert(axis.mem);
    }
    EXPECT_EQ(cu.size(), space.numCu());
    EXPECT_EQ(core.size(), space.numCoreClk());
    EXPECT_EQ(mem.size(), space.numMemClk());
}

TEST(SparsePredictorTest, AnchorsAreTheClassificationSlices)
{
    const auto space = ConfigSpace::testGrid();
    const SparsePredictor predictor(space);
    const auto anchors = predictor.anchorConfigs();

    EXPECT_TRUE(std::is_sorted(anchors.begin(), anchors.end()));
    const std::set<size_t> set(anchors.begin(), anchors.end());
    EXPECT_EQ(set.size(), anchors.size());

    const size_t cu_hi = space.numCu() - 1;
    const size_t core_hi = space.numCoreClk() - 1;
    const size_t mem_hi = space.numMemClk() - 1;
    for (size_t i = 0; i < space.numCu(); ++i)
        EXPECT_TRUE(set.count(space.flatten(i, core_hi, mem_hi)));
    for (size_t j = 0; j < space.numCoreClk(); ++j)
        EXPECT_TRUE(set.count(space.flatten(cu_hi, j, mem_hi)));
    for (size_t k = 0; k < space.numMemClk(); ++k)
        EXPECT_TRUE(set.count(space.flatten(cu_hi, core_hi, k)));
    EXPECT_TRUE(set.count(space.flatten(0, 0, 0)));
    EXPECT_EQ(predictor.minSamples(), anchors.size() + 1);
}

TEST(SparsePredictorTest, ActivePlanIdenticalAcrossRunsAndThreads)
{
    const auto space = ConfigSpace::testGrid();
    const SparsePredictor predictor(space);
    const auto dense = denseSurface("rodinia/bfs/kernel2");
    const auto measure = [&](size_t flat) {
        return dense.runtimes()[flat];
    };

    const auto reference = predictor.activePlan(14, measure);
    EXPECT_EQ(reference.size(), 14u);
    const std::set<size_t> distinct(reference.begin(),
                                    reference.end());
    EXPECT_EQ(distinct.size(), reference.size());

    // Re-planning must pick the identical sequence, including when
    // several plans run concurrently on the worker pool (the ctest -j
    // regime): the planner may share no hidden mutable state.
    std::vector<std::vector<size_t>> plans(8);
    harness::parallelFor(plans.size(), [&](size_t p) {
        plans[p] = predictor.activePlan(14, measure);
    });
    for (const auto &plan : plans)
        EXPECT_EQ(plan, reference);
}

TEST(SparsePredictorTest, MeasuredPointsPassThroughWithZeroBands)
{
    const auto space = ConfigSpace::testGrid();
    const SparsePredictor predictor(space);
    const auto dense = denseSurface("rodinia/bfs/kernel1");

    const auto indices = predictor.lhsPlan(12);
    const auto runtimes = runtimesAt(dense, indices);
    const auto rec = predictor.reconstruct(dense.kernelName(),
                                           indices, runtimes);

    EXPECT_EQ(rec.samples, indices.size());
    EXPECT_GE(rec.confidence, 0.0);
    EXPECT_LE(rec.confidence, 1.0);
    const std::set<size_t> sampled(indices.begin(), indices.end());
    for (size_t flat = 0; flat < space.size(); ++flat) {
        const double point = rec.surface.runtimes()[flat];
        EXPECT_LE(rec.lower[flat], point);
        EXPECT_GE(rec.upper[flat], point);
        if (sampled.count(flat)) {
            // Bitwise pass-through, zero-width band.
            EXPECT_EQ(point, dense.runtimes()[flat]);
            EXPECT_EQ(rec.lower[flat], point);
            EXPECT_EQ(rec.upper[flat], point);
        } else {
            EXPECT_GT(point, 0.0);
        }
    }
}

TEST(SparsePredictorTest, SamplerKindNamesRoundTrip)
{
    SamplerKind kind = SamplerKind::Active;
    EXPECT_TRUE(parseSamplerKind("lhs", &kind));
    EXPECT_EQ(kind, SamplerKind::Lhs);
    EXPECT_TRUE(parseSamplerKind("active", &kind));
    EXPECT_EQ(kind, SamplerKind::Active);
    EXPECT_FALSE(parseSamplerKind("sobol", &kind));
    EXPECT_EQ(samplerKindName(SamplerKind::Lhs), "lhs");
    EXPECT_EQ(samplerKindName(SamplerKind::Active), "active");
}

class SparsePredictorFatalTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogThrowOnTerminate(true); }
    void TearDown() override { setLogThrowOnTerminate(false); }
};

TEST_F(SparsePredictorFatalTest, RejectsBadBudgetsAndSamples)
{
    const auto space = ConfigSpace::testGrid();
    const SparsePredictor predictor(space);
    const auto dense = denseSurface("rodinia/hotspot/calculate_temp");
    const auto measure = [&](size_t flat) {
        return dense.runtimes()[flat];
    };

    // Budgets outside [minSamples, grid size].
    EXPECT_THROW(predictor.lhsPlan(predictor.minSamples() - 1),
                 std::runtime_error);
    EXPECT_THROW(predictor.lhsPlan(space.size() + 1),
                 std::runtime_error);
    EXPECT_THROW(
        predictor.activePlan(predictor.minSamples() - 1, measure),
        std::runtime_error);

    // Malformed samples.
    const std::vector<size_t> one_idx{0};
    const std::vector<double> negative{-1.0};
    EXPECT_THROW(predictor.fitSurface(one_idx, negative),
                 std::runtime_error);
    const std::vector<size_t> out_of_range{space.size()};
    const std::vector<double> ok{1.0};
    EXPECT_THROW(predictor.fitSurface(out_of_range, ok),
                 std::runtime_error);
    EXPECT_THROW(predictor.fitSurface({}, {}), std::runtime_error);

    // A duplicated index with *conflicting* runtimes is a data bug,
    // not something to average away.
    const std::vector<size_t> dup_idx{3, 3};
    const std::vector<double> conflicting{1.0, 2.0};
    EXPECT_THROW(predictor.fitSurface(dup_idx, conflicting),
                 std::runtime_error);
}

} // namespace
} // namespace scaling
} // namespace gpuscale
