/**
 * @file
 * Tests for the curve-shape classifier on synthetic curves with known
 * shapes, plus threshold-sensitivity checks.
 */

#include "scaling/shape.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "base/logging.hh"

namespace gpuscale {
namespace scaling {
namespace {

const std::vector<double> kKnob{4, 8, 12, 16, 20, 24, 28, 32, 36, 40,
                                44};

std::vector<double>
map(double (*fn)(double))
{
    std::vector<double> out;
    for (double x : kKnob)
        out.push_back(fn(x));
    return out;
}

TEST(ShapeTest, LinearCurve)
{
    const ShapeVerdict v =
        classifyCurve(kKnob, map([](double x) { return 2.0 * x; }));
    EXPECT_EQ(v.shape, CurveShape::Linear);
    EXPECT_NEAR(v.total_gain, 11.0, 1e-9);
    EXPECT_NEAR(v.efficiency, 1.0, 1e-9);
    EXPECT_NEAR(v.linearity_r2, 1.0, 1e-9);
}

TEST(ShapeTest, SublinearCurve)
{
    // sqrt growth: monotone, ~3.3x over an 11x knob.
    const ShapeVerdict v =
        classifyCurve(kKnob, map([](double x) { return std::sqrt(x); }));
    EXPECT_EQ(v.shape, CurveShape::Sublinear);
    EXPECT_LT(v.efficiency, 0.7);
    EXPECT_GT(v.total_gain, 1.15);
}

TEST(ShapeTest, PlateauCurve)
{
    // Saturates at knob = 12 (27% of the range).
    const ShapeVerdict v = classifyCurve(
        kKnob, map([](double x) { return std::min(x, 12.0); }));
    EXPECT_EQ(v.shape, CurveShape::Plateau);
    EXPECT_LE(v.saturation_knob, 16.0);
}

TEST(ShapeTest, FlatCurve)
{
    const ShapeVerdict v = classifyCurve(
        kKnob, map([](double x) { return 5.0 + 0.0001 * x; }));
    EXPECT_EQ(v.shape, CurveShape::Flat);
    EXPECT_LT(v.total_gain, 1.15);
}

TEST(ShapeTest, AdverseCurve)
{
    // Rises to a peak at ~8 CUs, then collapses well below it — the
    // paper's signature "more CUs hurt" curve.  Note the end is still
    // above the start; the loss is measured against the peak.
    const ShapeVerdict v = classifyCurve(
        kKnob, map([](double x) { return x < 10 ? x : 10.0 - 0.1 * x; }));
    EXPECT_EQ(v.shape, CurveShape::Adverse);
    EXPECT_GT(v.total_gain, 1.0);
}

TEST(ShapeTest, MonotoneDeclineIsAdverse)
{
    const ShapeVerdict v = classifyCurve(
        kKnob, map([](double x) { return 10.0 / x; }));
    EXPECT_EQ(v.shape, CurveShape::Adverse);
    EXPECT_DOUBLE_EQ(v.monotone_fraction, 0.0);
}

TEST(ShapeTest, MildDeclineIsNotAdverse)
{
    // Ends 5% below the start: salient feature is flatness, not loss.
    const ShapeVerdict v = classifyCurve(
        kKnob, map([](double x) { return 1.0 - 0.0012 * x; }));
    EXPECT_EQ(v.shape, CurveShape::Flat);
}

TEST(ShapeTest, SawtoothIsIrregular)
{
    std::vector<double> perf;
    for (size_t i = 0; i < kKnob.size(); ++i)
        perf.push_back(2.0 + (i % 2 == 0 ? 1.0 : -0.5) +
                       0.1 * static_cast<double>(i));
    const ShapeVerdict v = classifyCurve(kKnob, perf);
    EXPECT_EQ(v.shape, CurveShape::Irregular);
}

TEST(ShapeTest, SaturationKnobDetected)
{
    const ShapeVerdict v = classifyCurve(
        kKnob, map([](double x) { return std::min(x, 20.0); }));
    EXPECT_NEAR(v.saturation_knob, 20.0, 4.0);
}

TEST(ShapeTest, ThresholdsAreRespected)
{
    // With a stricter linear_fraction the same sub-proportional curve
    // demotes from Linear to Sublinear.
    const auto perf = map([](double x) { return std::pow(x, 0.85); });
    ShapeParams lenient;
    lenient.linear_fraction = 0.5;
    ShapeParams strict;
    strict.linear_fraction = 0.9;
    EXPECT_EQ(classifyCurve(kKnob, perf, lenient).shape,
              CurveShape::Linear);
    EXPECT_EQ(classifyCurve(kKnob, perf, strict).shape,
              CurveShape::Sublinear);
}

TEST(ShapeTest, NamesAreStable)
{
    EXPECT_EQ(shapeName(CurveShape::Linear), "linear");
    EXPECT_EQ(shapeName(CurveShape::Adverse), "adverse");
    EXPECT_EQ(shapeName(CurveShape::Irregular), "irregular");
}

class ShapeErrorTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogThrowOnTerminate(true); }
    void TearDown() override { setLogThrowOnTerminate(false); }
};

TEST_F(ShapeErrorTest, RejectsMalformedInput)
{
    const std::vector<double> k3{1, 2, 3};
    EXPECT_THROW(classifyCurve(std::vector<double>{1, 2},
                               std::vector<double>{1, 2}),
                 std::runtime_error);
    EXPECT_THROW(classifyCurve(k3, std::vector<double>{1, 2}),
                 std::runtime_error);
    EXPECT_THROW(classifyCurve(k3, std::vector<double>{1, 0, 2}),
                 std::runtime_error);
    EXPECT_THROW(classifyCurve(std::vector<double>{1, 3, 2},
                               std::vector<double>{1, 2, 3}),
                 std::runtime_error);
}

/**
 * Property: every curve classifies to exactly one shape, and the
 * verdict's summary statistics are finite.
 */
class ShapeTotalityTest : public ::testing::TestWithParam<int>
{
};

TEST_P(ShapeTotalityTest, TotalOnPolynomialFamily)
{
    const double exponent = GetParam() * 0.25 - 1.0; // -1.0 .. 1.5
    std::vector<double> perf;
    for (double x : kKnob)
        perf.push_back(std::pow(x, exponent));
    const ShapeVerdict v = classifyCurve(kKnob, perf);
    EXPECT_TRUE(std::isfinite(v.total_gain));
    EXPECT_TRUE(std::isfinite(v.efficiency));
    EXPECT_GE(v.monotone_fraction, 0.0);
    EXPECT_LE(v.monotone_fraction, 1.0);
    EXPECT_GE(v.saturation_knob, kKnob.front());
    EXPECT_LE(v.saturation_knob, kKnob.back());
}

INSTANTIATE_TEST_SUITE_P(Exponents, ShapeTotalityTest,
                         ::testing::Range(0, 11));

} // namespace
} // namespace scaling
} // namespace gpuscale
