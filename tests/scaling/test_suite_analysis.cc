/**
 * @file
 * Tests for per-suite scalability aggregation.
 */

#include "scaling/suite_analysis.hh"

#include <gtest/gtest.h>

namespace gpuscale {
namespace scaling {
namespace {

KernelClassification
entry(const std::string &name, TaxonomyClass cls, int cu90)
{
    KernelClassification c;
    c.kernel = name;
    c.cls = cls;
    c.cu90 = cu90;
    return c;
}

TEST(SuiteOfKernelTest, ExtractsPrefix)
{
    EXPECT_EQ(suiteOfKernel("rodinia/bfs/kernel1"), "rodinia");
    EXPECT_EQ(suiteOfKernel("noslash"), "noslash");
}

TEST(SuiteAnalysisTest, GroupsAndCounts)
{
    const std::vector<KernelClassification> cs{
        entry("alpha/a/k1", TaxonomyClass::CoreBound, 44),
        entry("alpha/a/k2", TaxonomyClass::ParallelismStarved, 12),
        entry("beta/b/k1", TaxonomyClass::MemoryBound, 24),
    };
    const auto reports = analyzeSuites(cs, 44);
    ASSERT_EQ(reports.size(), 2u);

    const SuiteReport &alpha = reports[0];
    EXPECT_EQ(alpha.suite, "alpha");
    EXPECT_EQ(alpha.kernels, 2u);
    EXPECT_EQ(alpha.class_counts[static_cast<size_t>(
                  TaxonomyClass::CoreBound)],
              1u);
    EXPECT_EQ(alpha.class_counts[static_cast<size_t>(
                  TaxonomyClass::ParallelismStarved)],
              1u);
    EXPECT_DOUBLE_EQ(alpha.median_cu90, 28.0); // midpoint of 12, 44
    EXPECT_DOUBLE_EQ(alpha.frac_non_scaling, 0.5);
    EXPECT_DOUBLE_EQ(alpha.frac_saturating, 0.5);

    const SuiteReport &beta = reports[1];
    EXPECT_EQ(beta.kernels, 1u);
    EXPECT_DOUBLE_EQ(beta.frac_saturating, 1.0);
    EXPECT_DOUBLE_EQ(beta.frac_non_scaling, 0.0);
}

TEST(SuiteAnalysisTest, PreservesFirstSeenOrder)
{
    const std::vector<KernelClassification> cs{
        entry("zeta/a/k", TaxonomyClass::CoreBound, 44),
        entry("alpha/a/k", TaxonomyClass::CoreBound, 44),
        entry("zeta/b/k", TaxonomyClass::CoreBound, 44),
    };
    const auto reports = analyzeSuites(cs, 44);
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(reports[0].suite, "zeta");
    EXPECT_EQ(reports[1].suite, "alpha");
}

TEST(SuiteAnalysisTest, NonScalingClasses)
{
    const std::vector<KernelClassification> cs{
        entry("s/a/k1", TaxonomyClass::LaunchBound, 4),
        entry("s/a/k2", TaxonomyClass::CuAdverse, 4),
        entry("s/a/k3", TaxonomyClass::ParallelismStarved, 8),
        entry("s/a/k4", TaxonomyClass::Balanced, 44),
    };
    const auto reports = analyzeSuites(cs, 44);
    EXPECT_DOUBLE_EQ(reports[0].frac_non_scaling, 0.75);
}

TEST(SuiteAnalysisTest, PercentilesOfCu90)
{
    std::vector<KernelClassification> cs;
    for (int cu = 4; cu <= 44; cu += 4)
        cs.push_back(entry("s/p/k" + std::to_string(cu),
                           TaxonomyClass::CoreBound, cu));
    const auto reports = analyzeSuites(cs, 44);
    EXPECT_DOUBLE_EQ(reports[0].median_cu90, 24.0);
    // Rank 0.9 * 10 = 9 in the sorted 11-element list -> 40.
    EXPECT_DOUBLE_EQ(reports[0].p90_cu90, 40.0);
}

} // namespace
} // namespace scaling
} // namespace gpuscale
