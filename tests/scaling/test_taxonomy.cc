/**
 * @file
 * Tests for the taxonomy classifier on synthetic surfaces whose
 * generating law fixes the expected class.
 */

#include "scaling/taxonomy.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

namespace gpuscale {
namespace scaling {
namespace {

/**
 * Build a surface from a runtime law runtime(cus, core_mhz, mem_mhz).
 */
ScalingSurface
surfaceFromLaw(const std::string &name,
               const std::function<double(double, double, double)> &law)
{
    const ConfigSpace space = ConfigSpace::paperGrid();
    std::vector<double> runtimes(space.size());
    for (size_t i = 0; i < space.size(); ++i) {
        const auto cfg = space.at(i);
        runtimes[i] =
            law(cfg.num_cus, cfg.core_clk_mhz, cfg.mem_clk_mhz);
    }
    return ScalingSurface(name, space, std::move(runtimes));
}

TEST(TaxonomyTest, CoreBoundLaw)
{
    const auto s = surfaceFromLaw("x/core/k",
                                  [](double cu, double core, double) {
                                      return 1e6 / (cu * core);
                                  });
    const auto c = classifySurface(s);
    EXPECT_EQ(c.cls, TaxonomyClass::CoreBound)
        << taxonomyClassName(c.cls);
    EXPECT_EQ(c.freq.shape, CurveShape::Linear);
    EXPECT_EQ(c.mem.shape, CurveShape::Flat);
}

TEST(TaxonomyTest, MemoryBoundLaw)
{
    const auto s = surfaceFromLaw("x/mem/k",
                                  [](double, double, double mem) {
                                      return 1e6 / mem;
                                  });
    const auto c = classifySurface(s);
    EXPECT_EQ(c.cls, TaxonomyClass::MemoryBound)
        << taxonomyClassName(c.cls);
    EXPECT_EQ(c.mem.shape, CurveShape::Linear);
}

TEST(TaxonomyTest, BalancedLaw)
{
    // Runtime bound by whichever clock domain is slower; at the grid
    // corner both knobs matter.
    const auto s = surfaceFromLaw(
        "x/bal/k", [](double, double core, double mem) {
            return std::max(1e6 / core, 6e5 / mem);
        });
    const auto c = classifySurface(s);
    EXPECT_EQ(c.cls, TaxonomyClass::Balanced)
        << taxonomyClassName(c.cls);
    EXPECT_GT(c.freq.total_gain, 1.6);
    EXPECT_GT(c.mem.total_gain, 1.6);
}

TEST(TaxonomyTest, LatencyBoundLaw)
{
    // Memory latency dominates: core clock helps until the fixed
    // latency floor is hit, the memory clock never helps (latency is
    // clock invariant), and CUs add concurrency roughly linearly.
    const auto s = surfaceFromLaw(
        "x/lat/k", [](double cu, double core, double) {
            return (std::max(800.0, 4e5 / core) + 400.0) * 16.0 /
                   std::min(cu, 40.0);
        });
    const auto c = classifySurface(s);
    EXPECT_EQ(c.cls, TaxonomyClass::LatencyBound)
        << taxonomyClassName(c.cls);
    EXPECT_EQ(c.freq.shape, CurveShape::Plateau);
    EXPECT_EQ(c.mem.shape, CurveShape::Flat);
}

TEST(TaxonomyTest, ParallelismStarvedLaw)
{
    // Scales with core clock but CU scaling stops at 12.
    const auto s = surfaceFromLaw(
        "x/starve/k", [](double cu, double core, double) {
            return 1e6 / (std::min(cu, 12.0) * core);
        });
    const auto c = classifySurface(s);
    EXPECT_EQ(c.cls, TaxonomyClass::ParallelismStarved)
        << taxonomyClassName(c.cls);
    EXPECT_LE(c.cu90, 16);
}

TEST(TaxonomyTest, CuAdverseLaw)
{
    const auto s = surfaceFromLaw(
        "x/adv/k", [](double cu, double core, double) {
            return (1e5 + 3e4 * cu) / core;
        });
    const auto c = classifySurface(s);
    EXPECT_EQ(c.cls, TaxonomyClass::CuAdverse)
        << taxonomyClassName(c.cls);
    EXPECT_EQ(c.cu.shape, CurveShape::Adverse);
}

TEST(TaxonomyTest, LaunchBoundLaw)
{
    const auto s = surfaceFromLaw(
        "x/launch/k",
        [](double, double, double) { return 42.0; });
    const auto c = classifySurface(s);
    EXPECT_EQ(c.cls, TaxonomyClass::LaunchBound)
        << taxonomyClassName(c.cls);
    EXPECT_NEAR(c.perf_range, 1.0, 1e-9);
}

TEST(TaxonomyTest, Cu90Computation)
{
    const auto s = surfaceFromLaw(
        "x/cu90/k", [](double cu, double core, double) {
            return 1e6 / (std::min(cu, 24.0) * core);
        });
    const auto c = classifySurface(s);
    // 90% of the CU-24 plateau is reached at ~24 CUs.
    EXPECT_GE(c.cu90, 20);
    EXPECT_LE(c.cu90, 24);
}

TEST(TaxonomyTest, ClassifyAllAndHistogram)
{
    std::vector<ScalingSurface> surfaces;
    surfaces.push_back(surfaceFromLaw(
        "x/a/k", [](double cu, double core, double) {
            return 1e6 / (cu * core);
        }));
    surfaces.push_back(surfaceFromLaw(
        "x/b/k",
        [](double, double, double mem) { return 1e6 / mem; }));
    surfaces.push_back(surfaceFromLaw(
        "x/c/k", [](double, double, double) { return 1.0; }));

    const auto classifications = classifyAll(surfaces);
    ASSERT_EQ(classifications.size(), 3u);
    const auto hist = classHistogram(classifications);
    EXPECT_EQ(hist[static_cast<size_t>(TaxonomyClass::CoreBound)], 1u);
    EXPECT_EQ(hist[static_cast<size_t>(TaxonomyClass::MemoryBound)],
              1u);
    EXPECT_EQ(hist[static_cast<size_t>(TaxonomyClass::LaunchBound)],
              1u);
    size_t total = 0;
    for (size_t n : hist)
        total += n;
    EXPECT_EQ(total, 3u);
}

TEST(TaxonomyTest, ClassNamesDistinct)
{
    std::set<std::string> names;
    for (const auto cls : allTaxonomyClasses())
        EXPECT_TRUE(names.insert(taxonomyClassName(cls)).second);
    EXPECT_EQ(names.size(), kNumTaxonomyClasses);
}

TEST(TaxonomyTest, InsensitiveRangeThresholdMatters)
{
    // 1.3x total range: LaunchBound under a loose threshold, not
    // under the default.
    const auto s = surfaceFromLaw(
        "x/weak/k", [](double, double core, double) {
            return 1.0 + 90.0 / core; // range ~1.3x
        });
    TaxonomyParams loose;
    loose.insensitive_range = 1.5;
    EXPECT_EQ(classifySurface(s, loose).cls,
              TaxonomyClass::LaunchBound);
    const auto c = classifySurface(s);
    EXPECT_NE(c.cls, TaxonomyClass::LaunchBound);
}

} // namespace
} // namespace scaling
} // namespace gpuscale
