/**
 * @file
 * Tests for ScalingSurface.
 */

#include "scaling/surface.hh"

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"

namespace gpuscale {
namespace scaling {
namespace {

/** A synthetic surface: runtime = K / (cus * core * mem). */
ScalingSurface
idealSurface()
{
    const ConfigSpace space = ConfigSpace::testGrid();
    std::vector<double> runtimes(space.size());
    for (size_t i = 0; i < space.size(); ++i) {
        const auto cfg = space.at(i);
        runtimes[i] = 1e9 / (cfg.num_cus * cfg.core_clk_mhz *
                             cfg.mem_clk_mhz);
    }
    return ScalingSurface("synthetic/ideal/k", space,
                          std::move(runtimes));
}

TEST(SurfaceTest, AccessorsAgree)
{
    const ScalingSurface s = idealSurface();
    const auto &space = s.space();
    for (size_t cu = 0; cu < space.numCu(); ++cu) {
        for (size_t c = 0; c < space.numCoreClk(); ++c) {
            for (size_t m = 0; m < space.numMemClk(); ++m) {
                EXPECT_DOUBLE_EQ(s.perfAt(cu, c, m),
                                 1.0 / s.runtimeAt(cu, c, m));
            }
        }
    }
}

TEST(SurfaceTest, CurvesHaveAxisLengths)
{
    const ScalingSurface s = idealSurface();
    EXPECT_EQ(s.cuCurveAtMax().size(), s.space().numCu());
    EXPECT_EQ(s.freqCurveAtMax().size(), s.space().numCoreClk());
    EXPECT_EQ(s.memCurveAtMax().size(), s.space().numMemClk());
}

TEST(SurfaceTest, IdealCurvesScaleProportionally)
{
    const ScalingSurface s = idealSurface();
    const auto cu = s.cuCurveAtMax();
    EXPECT_NEAR(cu.back() / cu.front(), 11.0, 1e-9);
    const auto freq = s.freqCurveAtMax();
    EXPECT_NEAR(freq.back() / freq.front(), 5.0, 1e-9);
    const auto mem = s.memCurveAtMax();
    EXPECT_NEAR(mem.back() / mem.front(), 1250.0 / 150.0, 1e-9);
}

TEST(SurfaceTest, BestWorstAndRange)
{
    const ScalingSurface s = idealSurface();
    EXPECT_GT(s.bestPerf(), s.worstPerf());
    EXPECT_NEAR(s.perfRange(), 11.0 * 5.0 * (1250.0 / 150.0), 1e-6);
}

TEST(SurfaceTest, SlicesAtArbitraryIndices)
{
    const ScalingSurface s = idealSurface();
    // Curve at the min of the other axes still has the right ratio.
    const auto cu_lo = s.cuCurve(0, 0);
    EXPECT_NEAR(cu_lo.back() / cu_lo.front(), 11.0, 1e-9);
}

TEST(SurfaceTest, ClockPlaneRowMajor)
{
    const ScalingSurface s = idealSurface();
    const auto plane = s.clockPlane(0);
    const auto &space = s.space();
    ASSERT_EQ(plane.size(), space.numCoreClk() * space.numMemClk());
    EXPECT_DOUBLE_EQ(plane[0 * space.numMemClk() + 1],
                     s.perfAt(0, 0, 1));
    EXPECT_DOUBLE_EQ(plane[2 * space.numMemClk() + 0],
                     s.perfAt(0, 2, 0));
}


TEST(SurfaceTest, RobustRangeIgnoresOutliers)
{
    const ConfigSpace space = ConfigSpace::testGrid();
    std::vector<double> runtimes(space.size(), 1.0);
    runtimes[3] = 0.2; // one spuriously fast sample
    const ScalingSurface s("synthetic/outlier/k", space,
                           std::move(runtimes));
    // The raw range sees the outlier; the robust range does not.
    EXPECT_NEAR(s.perfRange(), 5.0, 1e-9);
    EXPECT_NEAR(s.robustPerfRange(5.0), 1.0, 1e-9);
}

TEST(SurfaceTest, RobustRangeTracksRealSensitivity)
{
    const ScalingSurface s = idealSurface();
    // A genuinely sensitive surface keeps a large robust range.
    EXPECT_GT(s.robustPerfRange(), 20.0);
    EXPECT_LE(s.robustPerfRange(), s.perfRange());
}

class SurfaceErrorTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogThrowOnTerminate(true); }
    void TearDown() override { setLogThrowOnTerminate(false); }
};

TEST_F(SurfaceErrorTest, SizeMismatchIsFatal)
{
    const ConfigSpace space = ConfigSpace::testGrid();
    EXPECT_THROW(ScalingSurface("k", space, {1.0, 2.0}),
                 std::runtime_error);
}

TEST_F(SurfaceErrorTest, NonPositiveRuntimeIsFatal)
{
    const ConfigSpace space = ConfigSpace::testGrid();
    std::vector<double> runtimes(space.size(), 1.0);
    runtimes[5] = 0.0;
    EXPECT_THROW(ScalingSurface("k", space, std::move(runtimes)),
                 std::runtime_error);
}

} // namespace
} // namespace scaling
} // namespace gpuscale
