/**
 * @file
 * Tests for the configuration grid.
 */

#include "scaling/config_space.hh"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "base/logging.hh"

namespace gpuscale {
namespace scaling {
namespace {

TEST(ConfigSpaceTest, PaperGridHas891Points)
{
    const ConfigSpace space = ConfigSpace::paperGrid();
    EXPECT_EQ(space.numCu(), 11u);
    EXPECT_EQ(space.numCoreClk(), 9u);
    EXPECT_EQ(space.numMemClk(), 9u);
    EXPECT_EQ(space.size(), 891u);
}

TEST(ConfigSpaceTest, PaperGridMatchesAbstractRatios)
{
    const ConfigSpace space = ConfigSpace::paperGrid();
    EXPECT_NEAR(static_cast<double>(space.cuValues().back()) /
                    space.cuValues().front(),
                11.0, 1e-12);
    EXPECT_NEAR(space.coreClks().back() / space.coreClks().front(), 5.0,
                1e-12);
    EXPECT_NEAR(space.memClks().back() / space.memClks().front(),
                8.3333, 1e-3);
}

TEST(ConfigSpaceTest, FlattenUnflattenRoundTrip)
{
    const ConfigSpace space = ConfigSpace::paperGrid();
    for (size_t flat = 0; flat < space.size(); ++flat) {
        const auto idx = space.unflatten(flat);
        EXPECT_EQ(space.flatten(idx.cu, idx.core, idx.mem), flat);
    }
}

TEST(ConfigSpaceTest, AllConfigsDistinctAndValid)
{
    const ConfigSpace space = ConfigSpace::paperGrid();
    std::set<std::string> ids;
    for (size_t i = 0; i < space.size(); ++i) {
        const auto cfg = space.at(i);
        EXPECT_NO_THROW(cfg.validate());
        EXPECT_TRUE(ids.insert(cfg.id()).second) << cfg.id();
    }
    EXPECT_EQ(ids.size(), 891u);
}

TEST(ConfigSpaceTest, ExtremeConfigs)
{
    const ConfigSpace space = ConfigSpace::paperGrid();
    EXPECT_EQ(space.minConfig().num_cus, 4);
    EXPECT_EQ(space.maxConfig().num_cus, 44);
    EXPECT_DOUBLE_EQ(space.minConfig().core_clk_mhz, 200.0);
    EXPECT_DOUBLE_EQ(space.maxConfig().mem_clk_mhz, 1250.0);
}

TEST(ConfigSpaceTest, BaseTemplatePropagates)
{
    gpu::GpuConfig base;
    base.l2_slices = 16;
    const ConfigSpace space({4, 8}, {500}, {700}, base);
    EXPECT_EQ(space.at(0, 0, 0).l2_slices, 16);
    EXPECT_EQ(space.at(1, 0, 0).num_cus, 8);
}

TEST(ConfigSpaceTest, TestGridIsSmallCube)
{
    const ConfigSpace space = ConfigSpace::testGrid();
    EXPECT_EQ(space.size(), 27u);
}

class ConfigSpaceErrorTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogThrowOnTerminate(true); }
    void TearDown() override { setLogThrowOnTerminate(false); }
};

TEST_F(ConfigSpaceErrorTest, RejectsEmptyAxis)
{
    EXPECT_THROW(ConfigSpace({}, {500}, {700}), std::runtime_error);
}

TEST_F(ConfigSpaceErrorTest, RejectsNonIncreasingAxis)
{
    EXPECT_THROW(ConfigSpace({8, 4}, {500}, {700}),
                 std::runtime_error);
    EXPECT_THROW(ConfigSpace({4, 4}, {500}, {700}),
                 std::runtime_error);
}

TEST_F(ConfigSpaceErrorTest, OutOfRangeIndexPanics)
{
    const ConfigSpace space = ConfigSpace::testGrid();
    EXPECT_THROW(space.at(99), std::runtime_error);
    EXPECT_THROW(space.flatten(3, 0, 0), std::runtime_error);
}

} // namespace
} // namespace scaling
} // namespace gpuscale
