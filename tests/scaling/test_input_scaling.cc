/**
 * @file
 * Tests for the input-scaling analysis.
 */

#include "scaling/input_scaling.hh"

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "gpu/analytic_model.hh"
#include "workloads/archetypes.hh"

namespace gpuscale {
namespace scaling {
namespace {

const ConfigSpace &
grid()
{
    static const ConfigSpace space = ConfigSpace::paperGrid();
    return space;
}

TEST(InputScalingTest, StarvedComputeKernelIsFixable)
{
    // 8 workgroups of heavy compute saturate at 8 CUs; at 64x the
    // launch fills the machine.
    const gpu::AnalyticModel model;
    const auto kernel = workloads::smallGridCompute(
        "is/starved/k", {.wgs = 8, .wi_per_wg = 256});
    const auto result = studyInputScaling(model, kernel, grid());

    ASSERT_EQ(result.points.size(), 4u);
    EXPECT_LE(result.points[0].cu90, 12);
    EXPECT_GT(result.points.back().cu90, result.points[0].cu90);
    EXPECT_EQ(result.verdict, InputVerdict::FixableByInput);
    EXPECT_EQ(result.points[0].workgroups, 8);
    EXPECT_EQ(result.points.back().workgroups, 8 * 64);
}

TEST(InputScalingTest, ContendedReductionIsAlgorithmLimited)
{
    // Atomic contention worsens with occupancy: bigger inputs do not
    // move the knee to the full machine.
    const gpu::AnalyticModel model;
    const auto kernel = workloads::reduction(
        "is/red/k", {.wgs = 1024, .wi_per_wg = 256}, 0.9);
    const auto result = studyInputScaling(model, kernel, grid());
    EXPECT_EQ(result.verdict, InputVerdict::AlgorithmLimited);
}

TEST(InputScalingTest, ComputeBoundKernelAlreadyScales)
{
    const gpu::AnalyticModel model;
    const auto kernel = workloads::denseCompute(
        "is/dense/k", {.wgs = 8192, .wi_per_wg = 256});
    const auto result = studyInputScaling(model, kernel, grid());
    // Already at the machine limit at 1x (cu90 quantizes to the grid
    // step below the full machine).
    EXPECT_GE(result.points[0].cu90, 40);
    EXPECT_EQ(result.verdict, InputVerdict::FixableByInput);
}

TEST(InputScalingTest, CustomMultipliers)
{
    const gpu::AnalyticModel model;
    const auto kernel = workloads::smallGridCompute(
        "is/c/k", {.wgs = 4, .wi_per_wg = 256});
    const auto result =
        studyInputScaling(model, kernel, grid(), {1, 2, 3});
    ASSERT_EQ(result.points.size(), 3u);
    EXPECT_EQ(result.points[1].workgroups, 8);
    EXPECT_EQ(result.points[2].workgroups, 12);
}

TEST(InputScalingTest, VerdictNamesDistinct)
{
    EXPECT_EQ(inputVerdictName(InputVerdict::FixableByInput),
              "fixable-by-input");
    EXPECT_EQ(inputVerdictName(InputVerdict::PartiallyFixable),
              "partially-fixable");
    EXPECT_EQ(inputVerdictName(InputVerdict::AlgorithmLimited),
              "algorithm-limited");
}

class InputScalingErrorTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogThrowOnTerminate(true); }
    void TearDown() override { setLogThrowOnTerminate(false); }
};

TEST_F(InputScalingErrorTest, RejectsBadMultipliers)
{
    const gpu::AnalyticModel model;
    const auto kernel = workloads::denseCompute(
        "is/e/k", {.wgs = 64, .wi_per_wg = 256});
    EXPECT_THROW(studyInputScaling(model, kernel, grid(), {}),
                 std::runtime_error);
    EXPECT_THROW(studyInputScaling(model, kernel, grid(), {1, 1}),
                 std::runtime_error);
    EXPECT_THROW(studyInputScaling(model, kernel, grid(), {-1, 2}),
                 std::runtime_error);
}

} // namespace
} // namespace scaling
} // namespace gpuscale
