/**
 * @file
 * End-to-end integration tests: the full paper census (267 kernels x
 * 891 configurations) through the analytic model, plus cross-model
 * agreement and clustering cross-checks.  These assert the properties
 * EXPERIMENTS.md reports.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "gpu/analytic_model.hh"
#include "gpu/timing/event_sim.hh"
#include "harness/experiment.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/sharded.hh"
#include "obs/run_manifest.hh"
#include "obs/trace.hh"
#include "scaling/cluster.hh"
#include "scaling/report.hh"
#include "scaling/suite_analysis.hh"
#include "base/csv.hh"
#include "workloads/registry.hh"

namespace gpuscale {
namespace {

const harness::CensusResult &
fullCensus()
{
    static const harness::CensusResult census =
        harness::runCensus(gpu::AnalyticModel{});
    return census;
}

TEST(EndToEndTest, CensusShape)
{
    const auto &census = fullCensus();
    EXPECT_EQ(census.space.size(), 891u);
    EXPECT_EQ(census.surfaces.size(), 267u);
    EXPECT_EQ(census.classifications.size(), 267u);
}

TEST(EndToEndTest, EveryMechanisticClassIsPopulated)
{
    // Irregular is the classifier's escape hatch: the deterministic
    // model produces clean curves, so it may legitimately be empty
    // here (it is exercised by synthetic curves in the unit tests).
    const auto hist =
        scaling::classHistogram(fullCensus().classifications);
    for (const auto cls : scaling::allTaxonomyClasses()) {
        if (cls == scaling::TaxonomyClass::Irregular)
            continue;
        EXPECT_GT(hist[static_cast<size_t>(cls)], 0u)
            << scaling::taxonomyClassName(cls);
    }
}

TEST(EndToEndTest, IntuitiveScalersDominate)
{
    // The paper: "many kernels scale in intuitive ways ... We also
    // find a number of kernels that scale in non-obvious ways".
    const auto hist =
        scaling::classHistogram(fullCensus().classifications);
    const size_t intuitive =
        hist[static_cast<size_t>(scaling::TaxonomyClass::CoreBound)] +
        hist[static_cast<size_t>(
            scaling::TaxonomyClass::MemoryBound)] +
        hist[static_cast<size_t>(scaling::TaxonomyClass::Balanced)];
    const size_t non_obvious = 267 - intuitive;
    EXPECT_GT(intuitive, 267u / 2);
    EXPECT_GT(non_obvious, 267u / 10);
}

TEST(EndToEndTest, SomeKernelsLosePerformanceWithMoreCus)
{
    size_t adverse = 0;
    for (const auto &c : fullCensus().classifications) {
        if (c.cu.total_gain < 0.85)
            ++adverse;
    }
    EXPECT_GE(adverse, 5u);
}

TEST(EndToEndTest, SomeKernelsPlateauInBothClockDomains)
{
    size_t plateau = 0;
    for (const auto &c : fullCensus().classifications) {
        if (c.freq.shape == scaling::CurveShape::Plateau &&
            (c.mem.shape == scaling::CurveShape::Plateau ||
             c.mem.shape == scaling::CurveShape::Flat)) {
            ++plateau;
        }
    }
    EXPECT_GE(plateau, 5u);
}

TEST(EndToEndTest, SuitesDoNotScaleToModernGpuSizes)
{
    const auto &census = fullCensus();
    const auto reports =
        scaling::analyzeSuites(census.classifications, 44);
    ASSERT_EQ(reports.size(), 7u);

    // Every suite leaves some of the machine unused, and at least two
    // suites have a majority of kernels saturating below 44 CUs.
    size_t heavily_saturating = 0;
    for (const auto &r : reports) {
        EXPECT_GT(r.kernels, 0u);
        if (r.frac_saturating > 0.5)
            ++heavily_saturating;
    }
    EXPECT_GE(heavily_saturating, 2u);
}

TEST(EndToEndTest, ClusteringAgreesWithTaxonomy)
{
    const auto &census = fullCensus();
    std::vector<std::vector<double>> features;
    features.reserve(census.surfaces.size());
    for (const auto &surface : census.surfaces)
        features.push_back(scaling::scalingFeatureVector(surface));

    const auto result = scaling::kmeans(
        features, static_cast<int>(scaling::kNumTaxonomyClasses), 3);
    const double purity =
        scaling::clusterPurity(result.assignment,
                               census.classifications);
    // Unsupervised structure should align well with the taxonomy.
    EXPECT_GT(purity, 0.55);
}

TEST(EndToEndTest, EventModelAgreesOnRepresentatives)
{
    const auto &census = fullCensus();
    const gpu::timing::EventModel event;
    const gpu::AnalyticModel analytic;
    const auto &registry = workloads::WorkloadRegistry::instance();
    const gpu::GpuConfig cfg = census.space.maxConfig();

    int compared = 0;
    for (const auto *rep :
         harness::representativesPerClass(census)) {
        const auto *kernel = registry.findKernel(rep->kernel);
        ASSERT_NE(kernel, nullptr) << rep->kernel;
        // Skip very launch-heavy kernels to keep runtime bounded; the
        // models share the launch-overhead term anyway.
        if (kernel->launches > 200 || kernel->totalWaves(cfg) > 100000)
            continue;
        const double te = event.estimate(*kernel, cfg).time_s;
        const double ta = analytic.estimate(*kernel, cfg).time_s;
        EXPECT_NEAR(te / ta, 1.0, 0.45) << rep->kernel;
        ++compared;
    }
    EXPECT_GE(compared, 2);
}

TEST(EndToEndTest, ReportsRenderForFullCensus)
{
    const auto &census = fullCensus();
    EXPECT_NO_THROW({
        const auto t =
            scaling::classHistogramTable(census.classifications);
        EXPECT_EQ(t.numRows(), scaling::kNumTaxonomyClasses + 1);
    });
    EXPECT_NO_THROW(
        scaling::nonObviousTable(census.classifications).render());
    EXPECT_NO_THROW(
        scaling::suiteBreakdownTable(
            scaling::analyzeSuites(census.classifications, 44), 44)
            .render());
}

TEST(EndToEndTest, CsvDumpsAreParseable)
{
    const auto &census = fullCensus();
    std::ostringstream os;
    scaling::writeClassificationsCsv(os, census.classifications);
    const auto doc = parseCsv(os.str());
    EXPECT_EQ(doc.rows.size(), 267u);
    EXPECT_EQ(doc.columnIndex("class"), 1u);

    std::ostringstream so;
    scaling::writeSurfaceCsv(so, census.surfaces.front());
    const auto sdoc = parseCsv(so.str());
    EXPECT_EQ(sdoc.rows.size(), 891u);
}


TEST(EndToEndTest, MemoryBoundIsTheLargestClass)
{
    // GPGPU suites of the era were predominantly bandwidth limited;
    // the zoo reproduces that skew.
    const auto hist =
        scaling::classHistogram(fullCensus().classifications);
    const size_t mem = hist[static_cast<size_t>(
        scaling::TaxonomyClass::MemoryBound)];
    for (const auto cls : scaling::allTaxonomyClasses()) {
        if (cls != scaling::TaxonomyClass::MemoryBound) {
            EXPECT_GE(mem, hist[static_cast<size_t>(cls)]);
        }
    }
}

TEST(EndToEndTest, GraphSuitesAreTheWorstScalers)
{
    const auto reports =
        scaling::analyzeSuites(fullCensus().classifications, 44);
    double pannotia = -1, shoc = -1, polybench = -1;
    for (const auto &r : reports) {
        if (r.suite == "pannotia")
            pannotia = r.frac_non_scaling;
        if (r.suite == "shoc")
            shoc = r.frac_non_scaling;
        if (r.suite == "polybench")
            polybench = r.frac_non_scaling;
    }
    ASSERT_GE(pannotia, 0.0);
    EXPECT_GT(pannotia, shoc);
    EXPECT_GT(pannotia, polybench);
}

TEST(EndToEndTest, AdverseKernelsHaveMechanisms)
{
    // Every CU-adverse kernel in the zoo carries one of the two
    // modelled mechanisms: contended atomics or an L2-resident
    // working set that scales with active workgroups.
    const auto &registry = workloads::WorkloadRegistry::instance();
    for (const auto &c : fullCensus().classifications) {
        if (c.cls != scaling::TaxonomyClass::CuAdverse)
            continue;
        const auto *k = registry.findKernel(c.kernel);
        ASSERT_NE(k, nullptr) << c.kernel;
        const bool atomic_mechanism =
            k->atomic_ops > 0 && k->atomic_contention > 0;
        const bool cache_mechanism =
            k->l2_reuse >= 0.5 && k->footprint_bytes_per_wg > 0;
        EXPECT_TRUE(atomic_mechanism || cache_mechanism) << c.kernel;
    }
}

TEST(EndToEndTest, StarvedKernelsHaveSmallLaunches)
{
    const auto &registry = workloads::WorkloadRegistry::instance();
    const auto capacity_cfg = fullCensus().space.maxConfig();
    for (const auto &c : fullCensus().classifications) {
        if (c.cls != scaling::TaxonomyClass::ParallelismStarved)
            continue;
        const auto *k = registry.findKernel(c.kernel);
        ASSERT_NE(k, nullptr) << c.kernel;
        // A starved kernel cannot fill the biggest machine.
        const auto occ = gpu::computeOccupancy(*k, capacity_cfg);
        EXPECT_EQ(occ.limiter, gpu::OccupancyLimiter::LaunchSize)
            << c.kernel;
    }
}

TEST(EndToEndTest, SweepEmitsRequiredTelemetry)
{
    // The acceptance telemetry for a census-style run: trace spans
    // per swept kernel and per worker thread, and the sweep metrics.
    const std::string trace_path =
        ::testing::TempDir() + "/e2e_sweep.trace.json";
    obs::TraceSession::start(trace_path);

    const gpu::AnalyticModel model;
    const auto space = scaling::ConfigSpace::testGrid();
    const auto kernels =
        workloads::WorkloadRegistry::instance().allKernels();
    const auto surfaces = harness::sweepKernels(model, kernels, space);
    ASSERT_EQ(surfaces.size(), kernels.size());
    ASSERT_GT(obs::TraceSession::stop(), 0u);

    std::ifstream is(trace_path);
    ASSERT_TRUE(is);
    std::stringstream buffer;
    buffer << is.rdbuf();
    const obs::JsonValue doc = obs::parseJson(buffer.str());

    size_t kernel_spans = 0, worker_spans = 0;
    for (const auto &ev : doc.at("traceEvents").array) {
        if (ev.at("ph").str != "X")
            continue;
        const std::string &name = ev.at("name").str;
        if (name.rfind("sweep/", 0) == 0)
            ++kernel_spans;
        if (name.rfind("parallel_for.", 0) == 0)
            ++worker_spans;
    }
    // One span per swept kernel, and at least one per worker thread
    // (single-core hosts run the serial path, also a span).
    EXPECT_GE(kernel_spans, kernels.size());
    EXPECT_GE(worker_spans, 1u);

    // The registry carries the acceptance metrics with live values.
    auto &reg = obs::Registry::instance();
    EXPECT_GE(reg.shardedCounter("sweep.estimates.count").value(),
              kernels.size() * space.size());
    EXPECT_GE(reg.shardedHistogram("sweep.estimate.latency")
                  .percentile(50),
              0.0);
    EXPECT_GT(reg.shardedHistogram("sweep.estimate.latency").count(),
              0u);
    EXPECT_GE(reg.gauge("parallel.worker.imbalance").value(), 1.0);

    const obs::JsonValue snap = obs::parseJson(reg.snapshotJson());
    EXPECT_NE(snap.at("counters").find("sweep.estimates.count"),
              nullptr);
    EXPECT_NE(snap.at("histograms").find("sweep.estimate.latency"),
              nullptr);
    EXPECT_NE(snap.at("gauges").find("parallel.worker.imbalance"),
              nullptr);
}

TEST(EndToEndTest, CensusProducesValidManifest)
{
    const gpu::AnalyticModel model;
    const obs::ManifestTimer timer;
    const auto census = harness::runCensus(
        model, scaling::ConfigSpace::testGrid());

    obs::RunManifest manifest =
        harness::censusManifest(census, model);
    manifest.argv = {"census"};
    timer.finalize(manifest);

    const std::string path =
        ::testing::TempDir() + "/e2e_census.manifest.json";
    obs::writeManifest(manifest, path);

    std::ifstream is(path);
    ASSERT_TRUE(is);
    std::stringstream buffer;
    buffer << is.rdbuf();
    const obs::JsonValue v = obs::parseJson(buffer.str());

    EXPECT_EQ(v.at("tool").str, "gpuscale");
    EXPECT_EQ(v.at("command").str, "census");
    EXPECT_EQ(v.at("model").str, "analytic");
    EXPECT_DOUBLE_EQ(v.at("workload").at("num_kernels").number, 267.0);
    EXPECT_DOUBLE_EQ(v.at("config_space").at("num_configs").number,
                     27.0);
    EXPECT_EQ(v.at("config_space").at("cu_values").array.size(), 3u);
    EXPECT_GT(v.at("wall_time_s").number, 0.0);
    EXPECT_FALSE(v.at("started_at").str.empty());
    // The embedded metrics snapshot reflects the sweep that ran.
    EXPECT_GE(v.at("metrics")
                  .at("counters")
                  .at("sweep.estimates.count")
                  .number,
              267.0 * 27.0);
}

} // namespace
} // namespace gpuscale
