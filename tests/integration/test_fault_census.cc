/**
 * @file
 * Fault-injection census: with a 10% injected I/O fault rate on the
 * sweep-cache disk sites and retries disabled, the census must
 * degrade (counted, absorbed) while every classification and surface
 * stays bitwise identical to a clean run.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "base/fault.hh"
#include "gpu/analytic_model.hh"
#include "harness/experiment.hh"
#include "harness/sweep_cache.hh"
#include "obs/fault_telemetry.hh"
#include "obs/metrics.hh"
#include "obs/retry.hh"
#include "scaling/config_space.hh"
#include "support/temp_dir.hh"

namespace gpuscale {
namespace {

uint64_t
counterValue(const char *name)
{
    return obs::Registry::instance().counter(name).value();
}

TEST(FaultCensus, DiskFaultsDegradeButNeverChangeResults)
{
    obs::installFaultTelemetry();
    const gpu::AnalyticModel model;
    const auto space = scaling::ConfigSpace::testGrid();

    // Reference: no cache directory, no faults.
    const auto clean = harness::runCensus(model, space);

    // Faulty run: disk cache enabled, every disk read/write probe
    // fails with 10% probability, and retries are disabled so every
    // injected fault must exhaust straight into degradation.
    test::ScopedTempDir cache_dir("fault_census_cache");
    harness::SweepCache::instance().setDirectory(cache_dir.path());
    harness::SweepCache::instance().clear();
    const obs::RetryPolicy saved = obs::retryPolicy();
    obs::RetryPolicy no_retry = saved;
    no_retry.max_attempts = 1;
    obs::setRetryPolicy(no_retry);
    FaultInjector::instance().arm(
        {{"sweep_cache.disk.*", 0.1, FaultKind::IoError, 0.0}}, 42);

    const uint64_t degraded0 = obs::degradationCount();
    const uint64_t injected0 = counterValue("fault.injected.io");
    const auto faulty = harness::runCensus(model, space);

    FaultInjector::instance().disarm();
    obs::setRetryPolicy(saved);
    harness::SweepCache::instance().setDirectory("");
    harness::SweepCache::instance().clear();

    // The campaign must actually have fired and been absorbed...
    EXPECT_GT(counterValue("fault.injected.io"), injected0);
    EXPECT_GT(obs::degradationCount(), degraded0);

    // ...without perturbing a single output bit.
    ASSERT_EQ(faulty.classifications.size(),
              clean.classifications.size());
    for (size_t i = 0; i < clean.classifications.size(); ++i) {
        const auto &c = clean.classifications[i];
        const auto &f = faulty.classifications[i];
        EXPECT_EQ(f.kernel, c.kernel);
        EXPECT_EQ(f.cls, c.cls) << c.kernel;
        EXPECT_EQ(f.perf_range, c.perf_range) << c.kernel;
        EXPECT_EQ(f.cu90, c.cu90) << c.kernel;
    }
    ASSERT_EQ(faulty.surfaces.size(), clean.surfaces.size());
    for (size_t i = 0; i < clean.surfaces.size(); ++i) {
        ASSERT_EQ(faulty.surfaces[i].runtimes().size(),
                  clean.surfaces[i].runtimes().size());
        for (size_t j = 0; j < clean.surfaces[i].runtimes().size();
             ++j)
            EXPECT_EQ(faulty.surfaces[i].runtimes()[j],
                      clean.surfaces[i].runtimes()[j]);
    }
}

} // namespace
} // namespace gpuscale
