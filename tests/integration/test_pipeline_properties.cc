/**
 * @file
 * Property tests over the whole pipeline: for arbitrary generated
 * kernels, sweep -> surface -> shapes -> taxonomy must be total,
 * deterministic, and produce finite, well-formed verdicts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "gpu/analytic_model.hh"
#include "harness/noise.hh"
#include "harness/sweep.hh"
#include "scaling/cluster.hh"
#include "scaling/predictor.hh"
#include "scaling/taxonomy.hh"
#include "workloads/generator.hh"

namespace gpuscale {
namespace {

class PipelinePropertyTest : public ::testing::TestWithParam<uint64_t>
{
  protected:
    const scaling::ConfigSpace space_ =
        scaling::ConfigSpace::paperGrid();
    const gpu::AnalyticModel model_;
};

TEST_P(PipelinePropertyTest, ClassifierIsTotalAndFinite)
{
    workloads::KernelGenerator gen(GetParam());
    for (int i = 0; i < 12; ++i) {
        const auto kernel = gen.next();
        const auto surface =
            harness::sweepKernel(model_, kernel, space_);
        const auto c = scaling::classifySurface(surface);

        // A class is always assigned and names render.
        EXPECT_FALSE(scaling::taxonomyClassName(c.cls).empty());

        for (const auto *verdict : {&c.freq, &c.mem, &c.cu}) {
            EXPECT_TRUE(std::isfinite(verdict->total_gain))
                << kernel.name;
            EXPECT_GT(verdict->total_gain, 0.0) << kernel.name;
            EXPECT_GE(verdict->monotone_fraction, 0.0) << kernel.name;
            EXPECT_LE(verdict->monotone_fraction, 1.0) << kernel.name;
            EXPECT_GE(verdict->linearity_r2, 0.0) << kernel.name;
            EXPECT_LE(verdict->linearity_r2, 1.0 + 1e-12)
                << kernel.name;
        }
        EXPECT_GE(c.cu90, space_.cuValues().front()) << kernel.name;
        EXPECT_LE(c.cu90, space_.cuValues().back()) << kernel.name;
        EXPECT_GE(c.perf_range, 1.0 - 1e-12) << kernel.name;
    }
}

TEST_P(PipelinePropertyTest, PipelineIsDeterministic)
{
    workloads::KernelGenerator gen(GetParam() ^ 0x1234);
    const auto kernel = gen.next();
    const auto s1 = harness::sweepKernel(model_, kernel, space_);
    const auto s2 = harness::sweepKernel(model_, kernel, space_);
    EXPECT_EQ(s1.runtimes(), s2.runtimes());
    EXPECT_EQ(scaling::classifySurface(s1).cls,
              scaling::classifySurface(s2).cls);
}

TEST_P(PipelinePropertyTest, FeatureVectorsAreWellFormed)
{
    workloads::KernelGenerator gen(GetParam() ^ 0x9999);
    for (int i = 0; i < 6; ++i) {
        const auto surface =
            harness::sweepKernel(model_, gen.next(), space_);
        const auto features = scaling::scalingFeatureVector(surface);
        ASSERT_EQ(features.size(),
                  space_.numCu() + space_.numCoreClk() +
                      space_.numMemClk());
        for (double f : features) {
            EXPECT_TRUE(std::isfinite(f));
            EXPECT_GT(f, 0.0);
        }
        // Each segment is normalized to its first point.
        EXPECT_DOUBLE_EQ(features[0], 1.0);
        EXPECT_DOUBLE_EQ(features[space_.numCu()], 1.0);
        EXPECT_DOUBLE_EQ(
            features[space_.numCu() + space_.numCoreClk()], 1.0);
    }
}

TEST_P(PipelinePropertyTest, NoisyPipelineStaysTotal)
{
    const harness::NoisyModel noisy(model_, 0.10, GetParam());
    workloads::KernelGenerator gen(GetParam() ^ 0x777);
    for (int i = 0; i < 6; ++i) {
        const auto surface =
            harness::sweepKernel(noisy, gen.next(), space_);
        EXPECT_NO_THROW({
            const auto c = scaling::classifySurface(surface);
            (void)scaling::taxonomyClassName(c.cls);
        });
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertyTest,
                         ::testing::Range<uint64_t>(100, 106));

} // namespace
} // namespace gpuscale
