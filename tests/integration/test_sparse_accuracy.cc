/**
 * @file
 * Accuracy gate for the sparse census.
 *
 * The sparse predictor's contract (ISSUE: reconstruct the 891-config
 * grid from ~5–10% of measured points) is enforced here at the 10%
 * budget (89 of 891 configurations):
 *
 *  - class agreement with the dense census must be >= 95% for BOTH
 *    samplers, and
 *  - every disagreement must be *flagged*: its confidence band has to
 *    straddle a class boundary (band_crosses_boundary), so a consumer
 *    filtering on the band never acts on a silently wrong class.
 *
 * Failures print the offending kernels (sparse vs dense class,
 * confidence, banded or not) so a regression names its defectors.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>

#include "gpu/analytic_model.hh"
#include "harness/experiment.hh"
#include "harness/sparse.hh"
#include "scaling/taxonomy.hh"

namespace gpuscale {
namespace {

/** 10% of the paper grid, rounded down: 89 of 891 configurations. */
constexpr size_t kTenPercentBudget = 89;

const harness::CensusResult &
denseCensus()
{
    static const harness::CensusResult result =
        harness::runCensus(gpu::AnalyticModel{});
    return result;
}

harness::SparseCensusResult
sparseCensusWith(scaling::SamplerKind sampler)
{
    harness::SparseCensusOptions options;
    options.samples = kTenPercentBudget;
    options.sampler = sampler;
    options.seed = 0;
    return harness::runSparseCensus(gpu::AnalyticModel{},
                                    std::nullopt, options);
}

void
checkGate(scaling::SamplerKind sampler)
{
    const auto sparse = sparseCensusWith(sampler);
    ASSERT_EQ(sparse.reconstructions.size(),
              denseCensus().classifications.size());

    std::unordered_map<std::string, const scaling::KernelClassification *>
        dense_by_name;
    for (const auto &c : denseCensus().classifications)
        dense_by_name.emplace(c.kernel, &c);

    size_t disagreements = 0;
    size_t unbanded = 0;
    for (const auto &rec : sparse.reconstructions) {
        const auto it = dense_by_name.find(rec.cls.kernel);
        ASSERT_NE(it, dense_by_name.end()) << rec.cls.kernel;
        if (rec.cls.cls == it->second->cls)
            continue;
        ++disagreements;
        unbanded += rec.band_crosses_boundary ? 0 : 1;
        // Name every defector: which kernel, what the sparse census
        // thinks vs the dense truth, and whether the band flagged it.
        const char *flagged =
            rec.band_crosses_boundary ? "banded" : "UNBANDED";
        EXPECT_TRUE(rec.band_crosses_boundary)
            << scaling::samplerKindName(sampler) << " k=" << kTenPercentBudget
            << ": " << rec.cls.kernel << " sparse="
            << scaling::taxonomyClassName(rec.cls.cls) << " dense="
            << scaling::taxonomyClassName(it->second->cls)
            << " confidence=" << rec.confidence << " (" << flagged
            << ") — disagreement not flagged by its confidence band";
    }

    const double agreement =
        harness::sparseAgreement(sparse, denseCensus().classifications);
    EXPECT_GE(agreement, 0.95)
        << scaling::samplerKindName(sampler) << " sampler at "
        << kTenPercentBudget << "/" << denseCensus().space.size()
        << " samples: " << disagreements << " of "
        << sparse.reconstructions.size()
        << " kernels disagree with the dense census (" << unbanded
        << " without a boundary-crossing band)";
}

TEST(SparseAccuracyTest, LhsMeetsGateAtTenPercent)
{
    checkGate(scaling::SamplerKind::Lhs);
}

TEST(SparseAccuracyTest, ActiveMeetsGateAtTenPercent)
{
    checkGate(scaling::SamplerKind::Active);
}

TEST(SparseAccuracyTest, AgreementStatisticIsExactOnSelf)
{
    // sparseAgreement() compared against the sparse census's own
    // classifications must be exactly 1.0 — the statistic itself
    // cannot leak error into the gate.
    const auto sparse = sparseCensusWith(scaling::SamplerKind::Lhs);
    EXPECT_EQ(harness::sparseAgreement(sparse, sparse.classifications),
              1.0);
}

} // namespace
} // namespace gpuscale
