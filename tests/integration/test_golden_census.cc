/**
 * @file
 * Golden-data regression test for the paper census.
 *
 * Regenerates the full census and compares it byte-for-byte against
 * committed golden files:
 *
 *  - tests/golden/classifications.csv — every kernel's class, in
 *    writeClassificationsCsv() format;
 *  - tests/golden/headline.json — the T1–T5 headline numbers: 891
 *    configurations, 97 programs, 267 kernels, and the population of
 *    every taxonomy class.
 *
 * Any change to the model, the workload zoo, or the classifier that
 * shifts a single kernel fails here with a name-level diff.  When the
 * change is *intended*, regenerate with:
 *
 *     test_golden_census --update-golden
 *
 * (the golden directory comes from GPUSCALE_GOLDEN_DIR, exported by
 * tests/CMakeLists.txt, so the flag rewrites the checked-in files).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gpu/analytic_model.hh"
#include "harness/experiment.hh"
#include "obs/json.hh"
#include "scaling/report.hh"
#include "scaling/taxonomy.hh"
#include "workloads/registry.hh"

namespace gpuscale {
namespace {

bool update_golden = false;

std::string
goldenDir()
{
    const char *dir = std::getenv("GPUSCALE_GOLDEN_DIR");
    return dir != nullptr ? dir : "tests/golden";
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return "";
    std::stringstream buffer;
    buffer << is.rdbuf();
    return buffer.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path);
    ASSERT_TRUE(os) << "cannot write " << path;
    os << content;
}

/** One census per binary; both tests compare against it. */
const harness::CensusResult &
census()
{
    static const harness::CensusResult result =
        harness::runCensus(gpu::AnalyticModel{});
    return result;
}

std::string
headlineJson()
{
    const auto &reg = workloads::WorkloadRegistry::instance();
    std::map<std::string, uint64_t> populations;
    for (const auto cls : scaling::allTaxonomyClasses())
        populations[scaling::taxonomyClassName(cls)] = 0;
    for (const auto &c : census().classifications)
        ++populations[scaling::taxonomyClassName(c.cls)];

    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.key("num_configs")
        .value(static_cast<uint64_t>(census().space.size()));
    w.key("num_programs")
        .value(static_cast<uint64_t>(reg.numPrograms()));
    w.key("num_kernels")
        .value(static_cast<uint64_t>(reg.numKernels()));
    w.key("class_populations");
    w.beginObject();
    // std::map iterates sorted, so the serialization is stable.
    for (const auto &[name, count] : populations)
        w.key(name).value(count);
    w.endObject();
    w.endObject();
    os << '\n';
    return os.str();
}

std::string
classificationsCsv()
{
    std::ostringstream os;
    scaling::writeClassificationsCsv(os, census().classifications);
    return os.str();
}

TEST(GoldenCensusTest, ClassificationsMatchGoldenCsv)
{
    const std::string path = goldenDir() + "/classifications.csv";
    const std::string current = classificationsCsv();

    if (update_golden) {
        writeFile(path, current);
        GTEST_SKIP() << "updated " << path;
    }

    const std::string golden = readFile(path);
    ASSERT_FALSE(golden.empty())
        << path << " missing — run test_golden_census --update-golden";

    if (golden == current) {
        SUCCEED();
        return;
    }
    // Byte mismatch: report the first differing kernels by line so
    // the failure names the defectors instead of dumping both files.
    auto splitLines = [](const std::string &text) {
        std::vector<std::string> lines;
        std::istringstream is(text);
        std::string line;
        while (std::getline(is, line))
            lines.push_back(line);
        return lines;
    };
    const auto glines = splitLines(golden);
    const auto clines = splitLines(current);
    const size_t n = std::max(glines.size(), clines.size());
    size_t reported = 0;
    for (size_t i = 0; i < n && reported < 10; ++i) {
        const std::string &g = i < glines.size() ? glines[i] : "";
        const std::string &c = i < clines.size() ? clines[i] : "";
        if (g != c) {
            ADD_FAILURE() << "classifications.csv line " << (i + 1)
                          << "\n  golden:  " << g
                          << "\n  current: " << c;
            ++reported;
        }
    }
    ADD_FAILURE() << "census drifted from " << path
                  << " — if intended, regenerate with "
                     "test_golden_census --update-golden";
}

TEST(GoldenCensusTest, HeadlineNumbersMatchGoldenJson)
{
    const std::string path = goldenDir() + "/headline.json";
    const std::string current = headlineJson();

    if (update_golden) {
        writeFile(path, current);
        GTEST_SKIP() << "updated " << path;
    }

    const std::string golden = readFile(path);
    ASSERT_FALSE(golden.empty())
        << path << " missing — run test_golden_census --update-golden";

    // Structural comparison (parsed, not byte) so the diagnostic says
    // which headline number moved...
    const obs::JsonValue g = obs::parseJson(golden);
    const obs::JsonValue c = obs::parseJson(current);
    EXPECT_EQ(g.at("num_configs").number, c.at("num_configs").number);
    EXPECT_EQ(g.at("num_programs").number, c.at("num_programs").number);
    EXPECT_EQ(g.at("num_kernels").number, c.at("num_kernels").number);
    for (const auto cls : scaling::allTaxonomyClasses()) {
        const std::string name = scaling::taxonomyClassName(cls);
        EXPECT_EQ(g.at("class_populations").at(name).number,
                  c.at("class_populations").at(name).number)
            << "population of class " << name;
    }
    // ...and the bytes must match too (serialization stability is
    // part of the contract: goldens are diffed by git).
    EXPECT_EQ(golden, current);
}

TEST(GoldenCensusTest, GoldenAgreesWithPaperHeadline)
{
    // The goldens themselves must describe the paper's census shape;
    // guards against committing a golden generated from a test grid.
    EXPECT_EQ(census().space.size(), 891u);
    EXPECT_EQ(workloads::WorkloadRegistry::instance().numPrograms(),
              97u);
    EXPECT_EQ(workloads::WorkloadRegistry::instance().numKernels(),
              267u);
}

} // namespace
} // namespace gpuscale

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update-golden")
            gpuscale::update_golden = true;
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
