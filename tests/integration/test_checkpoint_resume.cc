/**
 * @file
 * The kill/resume proof: a journaled census SIGKILLed mid-run must
 * resume from its checkpoint — replaying a non-zero number of kernels
 * instead of restarting — and classify every kernel bitwise identical
 * to an uninterrupted census.
 *
 * The child process is forked before this process creates any
 * threads (forking a multi-threaded process can clone a held malloc
 * lock into the child); the parent only starts its own thread pool
 * after the fork.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <system_error>
#include <thread>

#include "base/fault.hh"
#include "gpu/analytic_model.hh"
#include "harness/checkpoint.hh"
#include "harness/experiment.hh"
#include "obs/metrics.hh"
#include "scaling/config_space.hh"
#include "support/temp_dir.hh"

namespace gpuscale {
namespace {

uint64_t
counterValue(const char *name)
{
    return obs::Registry::instance().counter(name).value();
}

TEST(CheckpointResume, KilledCensusResumesBitwiseIdentical)
{
    const gpu::AnalyticModel model;
    // Paper grid: records are ~7 KB each, so the journal's 64 KB
    // group-commit flushes roughly every 9 kernels and the parent can
    // observe progress early.
    const auto space = scaling::ConfigSpace::paperGrid();
    test::ScopedTempDir dir("ckpt_resume");
    const std::string journal_path = dir.sub("census.journal");

    const pid_t child = fork();
    ASSERT_NE(child, -1);
    if (child == 0) {
        // Child: a deliberately slow journaled census.  The delay
        // fault stalls every kernel sweep ~15 ms so the parent has a
        // wide window to SIGKILL between journal flushes.  _exit, not
        // exit: no destructors, like a real kill.
        FaultInjector::instance().arm(
            {{"sweep.kernel", 1.0, FaultKind::Delay, 15.0}}, 0);
        harness::CensusJournal journal(dir.path(),
                                       model.fingerprint(),
                                       space.grid().fingerprint());
        harness::runCensus(model, space, scaling::TaxonomyParams{},
                           nullptr, &journal);
        _exit(0);
    }

    // Parent: wait for the first group-commit flush to land, then
    // kill the child without warning.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(120);
    bool saw_progress = false;
    while (std::chrono::steady_clock::now() < deadline) {
        std::error_code ec;
        const auto size =
            std::filesystem::file_size(journal_path, ec);
        if (!ec && size >= harness::CensusJournal::kFlushBytes) {
            saw_progress = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::kill(child, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(saw_progress)
        << "journal never reached a flush before the deadline";
    // The interesting case is a genuine mid-run kill; if the child
    // somehow finished first the resume below still must hold.
    const bool killed = WIFSIGNALED(status);

    // Resume: the journal must replay a prefix of the census...
    harness::CensusJournal resumed(dir.path(), model.fingerprint(),
                                   space.grid().fingerprint());
    ASSERT_TRUE(resumed.active());
    EXPECT_GT(resumed.loadedRecords(), 0u);
    if (killed)
        EXPECT_LT(resumed.loadedRecords(), 267u);

    const uint64_t replayed0 = counterValue("checkpoint.replayed");
    const auto resumed_census =
        harness::runCensus(model, space, scaling::TaxonomyParams{},
                           nullptr, &resumed);
    EXPECT_GT(counterValue("checkpoint.replayed"), replayed0);

    // ...and the result must be indistinguishable from a census that
    // was never interrupted.
    const auto clean = harness::runCensus(model, space);
    ASSERT_EQ(resumed_census.classifications.size(),
              clean.classifications.size());
    for (size_t i = 0; i < clean.classifications.size(); ++i) {
        const auto &c = clean.classifications[i];
        const auto &r = resumed_census.classifications[i];
        EXPECT_EQ(r.kernel, c.kernel);
        EXPECT_EQ(r.cls, c.cls) << c.kernel;
        EXPECT_EQ(r.perf_range, c.perf_range) << c.kernel;
        EXPECT_EQ(r.cu90, c.cu90) << c.kernel;
    }
    ASSERT_EQ(resumed_census.surfaces.size(), clean.surfaces.size());
    for (size_t i = 0; i < clean.surfaces.size(); ++i) {
        const auto &cr = clean.surfaces[i].runtimes();
        const auto &rr = resumed_census.surfaces[i].runtimes();
        ASSERT_EQ(rr.size(), cr.size());
        for (size_t j = 0; j < cr.size(); ++j)
            EXPECT_EQ(rr[j], cr[j]);
    }
}

} // namespace
} // namespace gpuscale
