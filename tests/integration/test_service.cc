/**
 * @file
 * The gpuscaled acceptance proofs (ISSUE 10):
 *
 *  1. Saturation + fault matrix: with >=10% injected faults on the
 *     socket accept/read/write and queue-admission sites, every
 *     client call terminates within its deadline with a well-formed
 *     response — success, typed error, or RETRY_AFTER — no hangs and
 *     no torn frames, and a SIGTERM drain still exits cleanly.
 *
 *  2. Kill/resume: a SIGKILLed service loading the journaled paper
 *     census resumes on restart — health reports replayed records —
 *     and every kernel classified over the socket is bitwise
 *     identical to an uninterrupted in-process census.
 *
 * Fork discipline: the saturation test runs first and all forks
 * happen before this process creates any threads (client threads are
 * joined before the next fork; the in-process census that spins up
 * the harness pool runs only after the final fork).
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "base/fault.hh"
#include "gpu/analytic_model.hh"
#include "harness/checkpoint.hh"
#include "harness/experiment.hh"
#include "obs/json.hh"
#include "obs/retry.hh"
#include "scaling/config_space.hh"
#include "scaling/shape.hh"
#include "scaling/taxonomy.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "support/temp_dir.hh"
#include "workloads/registry.hh"

namespace gpuscale {
namespace {

using namespace std::chrono_literals;

/** Parse a response frame; ADD_FAILURE and null Type on a torn one. */
obs::JsonValue
parseFrame(const std::string &frame)
{
    try {
        obs::JsonValue doc = obs::parseJson(frame);
        if (doc.isObject() && doc.find("ok") != nullptr)
            return doc;
    } catch (const std::exception &) {
    }
    ADD_FAILURE() << "torn/garbled frame: " << frame;
    return obs::JsonValue{};
}

/** Block until health reports a loaded census (or fail the test). */
bool
waitForCensus(service::Client &client, double budget_s)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(budget_s);
    while (std::chrono::steady_clock::now() < deadline) {
        std::string resp;
        if (client.call("{\"id\":1,\"op\":\"health\"}", 2000.0,
                        &resp)) {
            const auto doc = parseFrame(resp);
            if (doc.isObject() &&
                doc.at("result").at("census_loaded").boolean)
                return true;
        } else {
            client.connect(2000.0);
        }
        std::this_thread::sleep_for(50ms);
    }
    return false;
}

// Declaration order is execution order: this test's forks must
// happen before KilledServiceResumesBitwise spins up the harness
// pool in the parent.
TEST(ServiceSaturation, FaultMatrixShedsTypedAndNeverHangs)
{
    test::ScopedTempDir dir("svc_sat");
    const std::string socket_path = dir.sub("gpuscaled.sock");

    const pid_t child = fork();
    ASSERT_NE(child, -1);
    if (child == 0) {
        // Child daemon: >=10% io faults across the socket and
        // admission sites, a tight retry budget, and a tiny
        // admission bound so real sheds happen on top of forced
        // ones.  _exit on failure — gtest cannot cross the fork.
        obs::RetryPolicy policy;
        policy.max_attempts = 6;
        policy.base_backoff_ms = 1.0;
        policy.max_backoff_ms = 5.0;
        obs::setRetryPolicy(policy);
        FaultInjector::instance().arm(
            {{"service.accept", 0.15, FaultKind::IoError, 0.0},
             {"service.conn.read", 0.15, FaultKind::IoError, 0.0},
             {"service.conn.write", 0.15, FaultKind::IoError, 0.0},
             {"service.admit", 0.20, FaultKind::IoError, 0.0}},
            7);

        service::ServiceOptions opts;
        opts.socket_path = socket_path;
        opts.test_grid = true;
        opts.max_inflight = 4;
        opts.client_quota = 2;
        opts.default_deadline_ms = 2000.0;
        const gpu::AnalyticModel model;
        service::Service svc(opts, model);
        if (!svc.start())
            _exit(10);
        svc.installSignalDrain();
        svc.loadCensus();
        svc.serve();
        _exit(0);
    }

    // Parent: a small client fleet hammering every op with 2 s
    // deadlines.  The contract under audit: each call terminates
    // promptly with a parseable frame; transport drops (exhausted
    // write retries, shed connections) are allowed but must fail
    // fast, never hang.
    const auto kernels =
        workloads::WorkloadRegistry::instance().allKernels();
    ASSERT_GE(kernels.size(), 8u);

    constexpr int kThreads = 6;
    constexpr int kCallsPerThread = 40;
    constexpr double kDeadlineMs = 2000.0;
    // Client-side cap: request deadline + scheduling grace.  A call
    // exceeding this is a hang, the one outcome never allowed.
    constexpr double kHangMs = 6000.0;

    std::atomic<int> ok_frames{0}, typed_errors{0}, sheds{0},
        transport_drops{0}, hangs{0};

    std::vector<std::thread> fleet;
    for (int t = 0; t < kThreads; ++t) {
        fleet.emplace_back([&, t] {
            service::Client client(socket_path);
            client.connect(10000.0);
            for (int i = 0; i < kCallsPerThread; ++i) {
                std::ostringstream os;
                const std::string kernel =
                    kernels[(t * kCallsPerThread + i) % 8]->name;
                switch (i % 6) {
                case 0:
                    os << "{\"id\":" << i << ",\"op\":\"health\"}";
                    break;
                case 1:
                    os << "{\"id\":" << i
                       << ",\"op\":\"classify\",\"client\":\"c" << t
                       << "\",\"deadline_ms\":" << kDeadlineMs
                       << ",\"params\":{\"kernel\":\"" << kernel
                       << "\"}}";
                    break;
                case 2:
                    os << "{\"id\":" << i
                       << ",\"op\":\"predict\",\"client\":\"c" << t
                       << "\",\"deadline_ms\":" << kDeadlineMs
                       << ",\"params\":{\"kernel\":\"" << kernel
                       << "\",\"cu\":4,\"core_clk_mhz\":800,"
                          "\"mem_clk_mhz\":1000}}";
                    break;
                case 3:
                    os << "{\"id\":" << i
                       << ",\"op\":\"stats\",\"client\":\"c" << t
                       << "\",\"deadline_ms\":" << kDeadlineMs << "}";
                    break;
                case 4:
                    os << "{\"id\":" << i
                       << ",\"op\":\"classify\",\"client\":\"c" << t
                       << "\",\"deadline_ms\":" << kDeadlineMs
                       << ",\"params\":{\"kernel\":\"no/such/"
                          "kernel\"}}";
                    break;
                default:
                    os << "{\"id\":" << i
                       << ",\"op\":\"census\",\"client\":\"c" << t
                       << "\",\"deadline_ms\":" << kDeadlineMs << "}";
                    break;
                }

                const auto t0 = std::chrono::steady_clock::now();
                std::string resp;
                const bool got =
                    client.call(os.str(), kDeadlineMs + 1000.0,
                                &resp);
                const double elapsed_ms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                if (elapsed_ms > kHangMs)
                    hangs.fetch_add(1);

                if (!got) {
                    transport_drops.fetch_add(1);
                    client.connect(5000.0);
                    continue;
                }
                const auto doc = parseFrame(resp);
                if (!doc.isObject())
                    continue; // already failed as torn
                if (doc.at("ok").boolean) {
                    ok_frames.fetch_add(1);
                } else {
                    typed_errors.fetch_add(1);
                    if (doc.at("error").at("code").str ==
                        "RETRY_AFTER")
                        sheds.fetch_add(1);
                }
            }
        });
    }
    for (auto &t : fleet)
        t.join();

    EXPECT_EQ(hangs.load(), 0);
    EXPECT_GT(ok_frames.load(), 0);
    // The tiny bound plus the service.admit fault guarantee sheds;
    // each one must have been a typed RETRY_AFTER frame.
    EXPECT_GT(sheds.load(), 0);
    // Transport drops are bounded by exhausted retries at ~0.15^6 per
    // frame plus shed connections; a majority dropping means the
    // retry envelope is not doing its job.
    EXPECT_LT(transport_drops.load(),
              kThreads * kCallsPerThread / 2);

    // SIGTERM: drain must finish promptly and exit clean.
    ASSERT_EQ(::kill(child, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status))
        << "daemon died of signal " << WTERMSIG(status);
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ServiceResume, KilledServiceResumesBitwise)
{
    const gpu::AnalyticModel model;
    const auto space = scaling::ConfigSpace::paperGrid();
    test::ScopedTempDir dir("svc_resume");
    const std::string journal_path = dir.sub("census.journal");
    const std::string sock1 = dir.sub("s1.sock");
    const std::string sock2 = dir.sub("s2.sock");

    const pid_t victim = fork();
    ASSERT_NE(victim, -1);
    if (victim == 0) {
        // First daemon: slow journaled load (the delay fault stalls
        // each kernel ~15 ms) so the parent can SIGKILL it between
        // group commits.
        FaultInjector::instance().arm(
            {{"sweep.kernel", 1.0, FaultKind::Delay, 15.0}}, 0);
        service::ServiceOptions opts;
        opts.socket_path = sock1;
        opts.checkpoint_dir = dir.path();
        const gpu::AnalyticModel child_model;
        service::Service svc(opts, child_model);
        if (!svc.start())
            _exit(10);
        svc.loadCensus();
        svc.serve();
        _exit(0);
    }

    // Parent: wait for the first 64 KB group commit, then kill
    // without warning.
    const auto kill_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    bool saw_progress = false;
    while (std::chrono::steady_clock::now() < kill_deadline) {
        std::error_code ec;
        const auto size =
            std::filesystem::file_size(journal_path, ec);
        if (!ec && size >= harness::CensusJournal::kFlushBytes) {
            saw_progress = true;
            break;
        }
        std::this_thread::sleep_for(20ms);
    }
    ::kill(victim, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(victim, &status, 0), victim);
    ASSERT_TRUE(saw_progress)
        << "journal never reached a flush before the deadline";

    // Second daemon: same checkpoint dir, fresh socket.  Forked
    // before the parent creates any threads.
    const pid_t revived = fork();
    ASSERT_NE(revived, -1);
    if (revived == 0) {
        service::ServiceOptions opts;
        opts.socket_path = sock2;
        opts.checkpoint_dir = dir.path();
        const gpu::AnalyticModel child_model;
        service::Service svc(opts, child_model);
        if (!svc.start())
            _exit(10);
        svc.installSignalDrain();
        svc.loadCensus();
        svc.serve();
        _exit(0);
    }

    // The oracle: an uninterrupted in-process census (this spins up
    // the harness pool — safe now, all forks are done).
    const auto clean = harness::runCensus(model, space);

    service::Client client(sock2);
    ASSERT_TRUE(client.connect(30000.0));
    ASSERT_TRUE(waitForCensus(client, 240.0))
        << "revived daemon never finished its census";

    // Health must prove this was a resume, not a restart.
    std::string resp;
    ASSERT_TRUE(client.call("{\"id\":2,\"op\":\"health\"}", 5000.0,
                            &resp));
    const auto health = parseFrame(resp);
    ASSERT_TRUE(health.isObject());
    EXPECT_GT(health.at("result").at("journal_replayed").number, 0.0);
    EXPECT_LT(health.at("result").at("journal_replayed").number,
              267.0);
    EXPECT_DOUBLE_EQ(health.at("result").at("kernels").number, 267.0);

    // Every kernel, classified over the socket, must match the clean
    // census bitwise.  JsonWriter emits shortest-round-trip doubles,
    // so equality after a parse round trip is bitwise equality.
    const auto checkVerdict = [](const obs::JsonValue &got,
                                 const scaling::ShapeVerdict &want,
                                 const std::string &kernel) {
        EXPECT_EQ(got.at("shape").str, scaling::shapeName(want.shape))
            << kernel;
        EXPECT_EQ(got.at("total_gain").number, want.total_gain)
            << kernel;
        EXPECT_EQ(got.at("efficiency").number, want.efficiency)
            << kernel;
    };
    for (const auto &want : clean.classifications) {
        std::ostringstream os;
        os << "{\"id\":3,\"op\":\"classify\",\"params\":{\"kernel\":"
           << "\"" << want.kernel << "\"}}";
        ASSERT_TRUE(client.call(os.str(), 10000.0, &resp))
            << want.kernel;
        const auto doc = parseFrame(resp);
        ASSERT_TRUE(doc.isObject()) << want.kernel;
        ASSERT_TRUE(doc.at("ok").boolean)
            << want.kernel << ": " << resp;
        const auto &result = doc.at("result");
        EXPECT_EQ(result.at("class").str,
                  scaling::taxonomyClassName(want.cls))
            << want.kernel;
        EXPECT_EQ(result.at("perf_range").number, want.perf_range)
            << want.kernel;
        EXPECT_DOUBLE_EQ(result.at("cu90").number,
                         static_cast<double>(want.cu90))
            << want.kernel;
        checkVerdict(result.at("freq"), want.freq, want.kernel);
        checkVerdict(result.at("mem"), want.mem, want.kernel);
        checkVerdict(result.at("cu"), want.cu, want.kernel);
    }

    // Drain the revived daemon; a clean exit closes the journal too.
    ASSERT_EQ(::kill(revived, SIGTERM), 0);
    ASSERT_EQ(::waitpid(revived, &status, 0), revived);
    ASSERT_TRUE(WIFEXITED(status))
        << "daemon died of signal " << WTERMSIG(status);
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

} // namespace
} // namespace gpuscale
