/**
 * @file
 * Golden-data regression test for the sparse census.
 *
 * Runs the K=64 LHS sparse census (seed 0) over all 267 zoo kernels
 * on the paper grid and compares the writeSparseCensusCsv() dump
 * byte-for-byte against tests/golden/sparse_census.csv.  Because the
 * sampler, the backfit, and the bootstrap ensemble are all seeded and
 * iteration-fixed, the file is exactly reproducible; any drift in the
 * model, the planner, or the fit shows up here as a name-level diff.
 * When the change is *intended*, regenerate with:
 *
 *     test_sparse_census --update-golden
 *
 * (the golden directory comes from GPUSCALE_GOLDEN_DIR, exported by
 * tests/CMakeLists.txt, so the flag rewrites the checked-in file).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "gpu/analytic_model.hh"
#include "harness/sparse.hh"
#include "scaling/report.hh"

namespace gpuscale {
namespace {

bool update_golden = false;

std::string
goldenDir()
{
    const char *dir = std::getenv("GPUSCALE_GOLDEN_DIR");
    return dir != nullptr ? dir : "tests/golden";
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return "";
    std::stringstream buffer;
    buffer << is.rdbuf();
    return buffer.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path);
    ASSERT_TRUE(os) << "cannot write " << path;
    os << content;
}

/** One sparse census per binary; every test compares against it. */
const harness::SparseCensusResult &
sparseCensus()
{
    static const harness::SparseCensusResult result = [] {
        harness::SparseCensusOptions options;
        options.samples = 64;
        options.sampler = scaling::SamplerKind::Lhs;
        options.seed = 0;
        return harness::runSparseCensus(gpu::AnalyticModel{},
                                        std::nullopt, options);
    }();
    return result;
}

std::string
sparseCensusCsv()
{
    std::ostringstream os;
    scaling::writeSparseCensusCsv(os, sparseCensus().reconstructions);
    return os.str();
}

TEST(GoldenSparseCensusTest, ReconstructionsMatchGoldenCsv)
{
    const std::string path = goldenDir() + "/sparse_census.csv";
    const std::string current = sparseCensusCsv();

    if (update_golden) {
        writeFile(path, current);
        GTEST_SKIP() << "updated " << path;
    }

    const std::string golden = readFile(path);
    ASSERT_FALSE(golden.empty())
        << path << " missing — run test_sparse_census --update-golden";

    if (golden == current) {
        SUCCEED();
        return;
    }
    // Byte mismatch: report the first differing kernels by line so
    // the failure names the defectors instead of dumping both files.
    auto splitLines = [](const std::string &text) {
        std::vector<std::string> lines;
        std::istringstream is(text);
        std::string line;
        while (std::getline(is, line))
            lines.push_back(line);
        return lines;
    };
    const auto glines = splitLines(golden);
    const auto clines = splitLines(current);
    const size_t n = std::max(glines.size(), clines.size());
    size_t reported = 0;
    for (size_t i = 0; i < n && reported < 10; ++i) {
        const std::string &g = i < glines.size() ? glines[i] : "";
        const std::string &c = i < clines.size() ? clines[i] : "";
        if (g != c) {
            ADD_FAILURE() << "sparse_census.csv line " << (i + 1)
                          << "\n  golden:  " << g
                          << "\n  current: " << c;
            ++reported;
        }
    }
    ADD_FAILURE() << "sparse census drifted from " << path
                  << " — if intended, regenerate with "
                     "test_sparse_census --update-golden";
}

TEST(GoldenSparseCensusTest, CensusHasThePaperShape)
{
    // Guards against committing a golden generated from a test grid
    // or a different budget.
    EXPECT_EQ(sparseCensus().space.size(), 891u);
    EXPECT_EQ(sparseCensus().reconstructions.size(), 267u);
    EXPECT_EQ(sparseCensus().classifications.size(), 267u);
    EXPECT_EQ(sparseCensus().options.samples, 64u);
    for (const auto &rec : sparseCensus().reconstructions)
        EXPECT_EQ(rec.samples, 64u);
}

} // namespace
} // namespace gpuscale

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update-golden")
            gpuscale::update_golden = true;
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
